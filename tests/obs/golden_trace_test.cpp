/**
 * @file
 * Golden end-to-end check: a one-slot simulation with full telemetry
 * produces a parseable JSONL trace with the documented event schema,
 * and populates the metrics registry across the sim/esd/core layers.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace heb {
namespace obs {
namespace {

/**
 * Tiny validator for the flat one-line objects the recorder emits:
 * `{"key": <number|null>, "key": "string", ...}`. Fails the test on
 * any structural violation and returns the key/raw-value pairs.
 */
std::map<std::string, std::string>
parseFlatJsonLine(const std::string &line)
{
    std::map<std::string, std::string> out;
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    auto expect = [&](char c) {
        ASSERT_LT(i, line.size()) << line;
        ASSERT_EQ(line[i], c) << "at offset " << i << ": " << line;
        ++i;
    };
    auto parseString = [&]() -> std::string {
        expect('"');
        std::string s;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\')
                ++i;
            s += line[i++];
        }
        expect('"');
        return s;
    };

    expect('{');
    skipWs();
    while (i < line.size() && line[i] != '}') {
        std::string key = parseString();
        skipWs();
        expect(':');
        skipWs();
        std::string value;
        if (line[i] == '"') {
            value = parseString();
        } else {
            // number or null
            while (i < line.size() && line[i] != ',' &&
                   line[i] != '}')
                value += line[i++];
            EXPECT_FALSE(value.empty()) << line;
        }
        EXPECT_EQ(out.count(key), 0u)
            << "duplicate key " << key << ": " << line;
        out[key] = value;
        skipWs();
        if (line[i] == ',') {
            ++i;
            skipWs();
        }
    }
    expect('}');
    return out;
}

TEST(GoldenTrace, OneSlotSimEmitsParseableSchema)
{
    setTelemetryLevel(TelemetryLevel::Full);
    TraceRecorder trace(1 << 14);
    setActiveTrace(&trace);

    SimConfig cfg;
    cfg.durationSeconds = 600.0; // exactly one control slot
    runOne(cfg, "TS", SchemeKind::HebD);

    setActiveTrace(nullptr);
    setTelemetryLevel(TelemetryLevel::Off);

    std::string path = ::testing::TempDir() + "/golden_trace.jsonl";
    trace.writeJsonl(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::map<std::string, int> type_counts;
    std::string line;
    std::vector<std::map<std::string, std::string>> events;
    while (std::getline(in, line)) {
        auto obj = parseFlatJsonLine(line);
        if (::testing::Test::HasFatalFailure())
            return;
        // Every event names its time and type.
        ASSERT_TRUE(obj.count("t")) << line;
        ASSERT_TRUE(obj.count("type")) << line;
        ++type_counts[obj["type"]];
        events.push_back(std::move(obj));
    }
    std::remove(path.c_str());

    // Every simulated second is traced exactly once: as a dense tick
    // event (stride 1) or inside a quiescent fast-forward summary.
    // One plan for the single slot, one SoC sample at the boundary.
    int covered = type_counts["tick"];
    for (const auto &ev : events) {
        if (ev.at("type") == "quiescent")
            covered += static_cast<int>(std::stod(ev.at("ticks")));
    }
    EXPECT_EQ(covered, 600);
    EXPECT_EQ(type_counts["slot_plan"], 1);
    EXPECT_GE(type_counts["soc_sample"], 1);

    for (const auto &ev : events) {
        const std::string &type = ev.at("type");
        if (type == "tick") {
            for (const char *field :
                 {"demand_w", "supply_w", "sc_w", "ba_w",
                  "unserved_w", "source_draw_w"})
                EXPECT_TRUE(ev.count(field))
                    << "tick event missing " << field;
        } else if (type == "quiescent") {
            for (const char *field :
                 {"ticks", "demand_w", "supply_w", "source_wh",
                  "sc_charge_wh", "ba_charge_wh"})
                EXPECT_TRUE(ev.count(field))
                    << "quiescent event missing " << field;
        } else if (type == "soc_sample") {
            for (const char *field :
                 {"sc_soc", "ba_soc", "sc_v", "ba_v", "r_lambda"})
                EXPECT_TRUE(ev.count(field))
                    << "soc_sample event missing " << field;
        }
    }
}

TEST(GoldenTrace, SimPopulatesMetricsAcrossLayers)
{
    // Zero any accumulation from sibling tests sharing the process.
    MetricsRegistry::global().reset();
    setTelemetryLevel(TelemetryLevel::Metrics);
    SimConfig cfg;
    cfg.durationSeconds = 600.0;
    runOne(cfg, "TS", SchemeKind::HebD);
    setTelemetryLevel(TelemetryLevel::Off);

    auto names = MetricsRegistry::global().names();
    EXPECT_GE(names.size(), 15u);
    int sim = 0, esd = 0, core = 0;
    for (const auto &n : names) {
        sim += n.rfind("sim.", 0) == 0;
        esd += n.rfind("esd.", 0) == 0;
        core += n.rfind("core.", 0) == 0;
    }
    EXPECT_GE(sim, 3) << "expected sim-layer metrics";
    EXPECT_GE(esd, 3) << "expected esd-layer metrics";
    EXPECT_GE(core, 3) << "expected core-layer metrics";

    auto &reg = MetricsRegistry::global();
    EXPECT_DOUBLE_EQ(reg.counter("sim.ticks_total").value(), 600.0);
    EXPECT_DOUBLE_EQ(reg.counter("sim.runs_total").value(), 1.0);
    EXPECT_GT(reg.histogram("sim.demand_w").count(), 0u);
}

TEST(GoldenTrace, TickStrideThinsTickEventsOnly)
{
    setTelemetryLevel(TelemetryLevel::Full);
    TraceRecorder trace(1 << 14, /*tick_stride=*/60);
    setActiveTrace(&trace);

    SimConfig cfg;
    cfg.durationSeconds = 600.0;
    // Pin dense ticking: this test is about the per-tick stride.
    cfg.fastForward = false;
    runOne(cfg, "TS", SchemeKind::HebD);

    setActiveTrace(nullptr);
    setTelemetryLevel(TelemetryLevel::Off);

    int ticks = 0, plans = 0;
    for (const auto &ev : trace.snapshot()) {
        ticks += ev.kind == TraceEventKind::Tick;
        plans += ev.kind == TraceEventKind::SlotPlan;
    }
    EXPECT_EQ(ticks, 10) << "600 ticks at stride 60";
    EXPECT_EQ(plans, 1) << "slot events must not be thinned";
}

} // namespace
} // namespace obs
} // namespace heb

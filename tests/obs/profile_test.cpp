/**
 * @file
 * Scoped-profiler and run-manifest tests: the disabled path records
 * nothing, enabled scopes accumulate per-site, the report names its
 * phases, and the manifest JSON carries the provenance fields.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/manifest.h"
#include "obs/profile.h"

namespace heb {
namespace obs {
namespace {

void
timedWork(int n)
{
    HEB_PROF_SCOPE("test.profile.work");
    volatile double acc = 0.0;
    for (int i = 0; i < n * 1000; ++i)
        acc = acc + 1.0;
}

TEST(Profile, DisabledScopesRecordNothing)
{
    setProfilingEnabled(false);
    ProfileSite &site = ProfileSite::intern("test.profile.work");
    std::uint64_t calls_before = site.calls();
    timedWork(1);
    EXPECT_EQ(site.calls(), calls_before);
}

TEST(Profile, EnabledScopesAccumulate)
{
    setProfilingEnabled(true);
    ProfileSite &site = ProfileSite::intern("test.profile.work");
    site.zero();
    timedWork(5);
    timedWork(5);
    setProfilingEnabled(false);
    EXPECT_EQ(site.calls(), 2u);
}

TEST(Profile, InternDedupesByName)
{
    ProfileSite &a = ProfileSite::intern("test.profile.same");
    ProfileSite &b = ProfileSite::intern("test.profile.same");
    EXPECT_EQ(&a, &b);
}

TEST(Profile, ReportNamesActiveSites)
{
    setProfilingEnabled(true);
    timedWork(5);
    setProfilingEnabled(false);
    std::string report = profileReport();
    EXPECT_NE(report.find("test.profile.work"), std::string::npos);
    EXPECT_NE(report.find("calls"), std::string::npos);
    EXPECT_NE(report.find("share(%)"), std::string::npos);

    bool found = false;
    for (const ProfileEntry &e : profileSites())
        found |= e.name == "test.profile.work" && e.calls > 0;
    EXPECT_TRUE(found);
}

TEST(Manifest, JsonCarriesProvenance)
{
    RunManifest m;
    m.tool = "unit_test";
    m.schemeName = "HEB-D";
    m.workloadName = "TS";
    m.config = {{"servers", "6"}, {"tick_seconds", "1.0"}};
    m.seed = 42;
    m.wallSeconds = 1.5;
    m.startedAtIso = "2026-01-01T00:00:00Z";
    m.includeMetrics = false;

    std::string json = manifestToJson(m);
    EXPECT_NE(json.find("\"tool\": \"unit_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"scheme\": \"HEB-D\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"TS\""), std::string::npos);
    EXPECT_NE(json.find("\"git\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"servers\": \"6\""), std::string::npos);
    EXPECT_NE(json.find("\"started_at\": \"2026-01-01T00:00:00Z\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"metrics\""), std::string::npos)
        << "includeMetrics=false must omit the registry dump";

    RunManifest with_metrics = m;
    with_metrics.includeMetrics = true;
    EXPECT_NE(manifestToJson(with_metrics).find("\"metrics\""),
              std::string::npos);
}

TEST(Manifest, WriteProducesReadableFile)
{
    RunManifest m;
    m.tool = "unit_test";
    m.includeMetrics = false;
    std::string path = ::testing::TempDir() + "/manifest_test.json";
    writeRunManifest(path, m);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();
    EXPECT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');

    long depth = 0;
    for (char ch : json) {
        if (ch == '{')
            ++depth;
        if (ch == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    std::remove(path.c_str());
}

TEST(Manifest, GitDescribeIsBakedIn)
{
    ASSERT_NE(gitDescribe(), nullptr);
    EXPECT_GT(std::string(gitDescribe()).size(), 0u);
}

} // namespace
} // namespace obs
} // namespace heb

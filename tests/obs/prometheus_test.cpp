/**
 * @file
 * Prometheus exposition tests: name sanitization, golden exposition
 * for a small labeled registry, cumulative histogram rendering, and
 * the validator's accept/reject behaviour (the same checks CI's
 * obs-smoke job applies via heb_promlint).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace heb {
namespace obs {
namespace {

class PrometheusTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setTelemetryLevel(TelemetryLevel::Metrics);
    }
    void TearDown() override
    {
        setTelemetryLevel(TelemetryLevel::Off);
    }
};

TEST_F(PrometheusTest, NameSanitization)
{
    EXPECT_EQ(prometheusName("sim.tick.count", false),
              "heb_sim_tick_count");
    EXPECT_EQ(prometheusName("fleet.rack-0/soc", false),
              "heb_fleet_rack_0_soc");
    // Counters get the _total suffix, but never twice.
    EXPECT_EQ(prometheusName("relay.actuations", true),
              "heb_relay_actuations_total");
    EXPECT_EQ(prometheusName("esd.cycles_total", true),
              "heb_esd_cycles_total");
}

TEST_F(PrometheusTest, GoldenExposition)
{
    MetricsRegistry reg;
    reg.counter("ticks").add(3.0);
    reg.gauge("soc", {{"rack", "rack0"}, {"scheme", "HEB-D"}})
        .set(0.5);
    reg.gauge("soc", {{"rack", "rack1"}, {"scheme", "HEB-D"}})
        .set(0.25);

    const std::string expected =
        "# HELP heb_ticks_total HEB metric ticks\n"
        "# TYPE heb_ticks_total counter\n"
        "heb_ticks_total 3\n"
        "# HELP heb_soc HEB metric soc\n"
        "# TYPE heb_soc gauge\n"
        "heb_soc{rack=\"rack0\",scheme=\"HEB-D\"} 0.5\n"
        "heb_soc{rack=\"rack1\",scheme=\"HEB-D\"} 0.25\n";
    EXPECT_EQ(renderPrometheus(reg), expected);

    std::string error;
    EXPECT_TRUE(validatePrometheusText(expected, &error)) << error;
}

TEST_F(PrometheusTest, LabelValuesEscaped)
{
    MetricsRegistry reg;
    reg.gauge("weird", {{"k", "a\"b\\c\nd"}}).set(1.0);
    std::string text = renderPrometheus(reg);
    EXPECT_NE(text.find("heb_weird{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
              std::string::npos)
        << text;
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST_F(PrometheusTest, LabelsSortedByKeyAtRegistration)
{
    MetricsRegistry reg;
    // Registration order must not leak into the exposition: the
    // same series reached with permuted labels is one series.
    Gauge &a = reg.gauge("g", {{"z", "1"}, {"a", "2"}});
    Gauge &b = reg.gauge("g", {{"a", "2"}, {"z", "1"}});
    EXPECT_EQ(&a, &b);
    std::string text = renderPrometheus(reg);
    EXPECT_NE(text.find("heb_g{a=\"2\",z=\"1\"} "),
              std::string::npos)
        << text;
}

TEST_F(PrometheusTest, HistogramBucketsAreCumulative)
{
    MetricsRegistry reg;
    HistogramSpec spec;
    spec.firstBoundary = 1.0;
    spec.growth = 10.0;
    spec.boundaryCount = 3; // bounds 1, 10, 100
    Histogram &h = reg.histogram("lat", spec);
    h.record(0.5);  // le=1
    h.record(5.0);  // le=10
    h.record(50.0); // le=100
    h.record(5000.0); // overflow -> only +Inf

    std::string text = renderPrometheus(reg);
    EXPECT_NE(text.find("heb_lat_bucket{le=\"1\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("heb_lat_bucket{le=\"10\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("heb_lat_bucket{le=\"100\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("heb_lat_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("heb_lat_count 4\n"), std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST_F(PrometheusTest, LabeledHistogramKeepsLeLast)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("d", {{"rack", "r0"}}, {});
    h.record(0.5);
    std::string text = renderPrometheus(reg);
    EXPECT_NE(text.find("heb_d_bucket{rack=\"r0\",le=\"1\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("heb_d_sum{rack=\"r0\"} 0.5\n"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST_F(PrometheusTest, NonFiniteValuesSpelled)
{
    MetricsRegistry reg;
    reg.gauge("pinf").set(HUGE_VAL);
    reg.gauge("ninf").set(-HUGE_VAL);
    std::string text = renderPrometheus(reg);
    EXPECT_NE(text.find("heb_pinf +Inf\n"), std::string::npos);
    EXPECT_NE(text.find("heb_ninf -Inf\n"), std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST_F(PrometheusTest, ValidatorAcceptsTimestampsAndComments)
{
    std::string error;
    EXPECT_TRUE(validatePrometheusText(
        "# free-form comment\n"
        "# TYPE up gauge\n"
        "up 1 1700000000000\n",
        &error))
        << error;
    // Empty scrape body is a valid scrape.
    EXPECT_TRUE(validatePrometheusText("", &error)) << error;
}

TEST_F(PrometheusTest, ValidatorRejectsMalformedLines)
{
    std::string error;

    EXPECT_FALSE(validatePrometheusText("0bad_name 1\n", &error));
    EXPECT_NE(error.find("bad metric name"), std::string::npos);

    EXPECT_FALSE(
        validatePrometheusText("m{k=unquoted} 1\n", &error));
    EXPECT_NE(error.find("bad quoting"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText(
        "m{k=\"a\",k=\"b\"} 1\n", &error));
    EXPECT_NE(error.find("duplicate label"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText("m not_a_number\n", &error));
    EXPECT_NE(error.find("bad sample value"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText("m 1 2 3\n", &error));
    EXPECT_NE(error.find("trailing garbage"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText(
        "# TYPE m gauge\n# TYPE m gauge\nm 1\n", &error));
    EXPECT_NE(error.find("duplicate TYPE"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText(
        "m 1\n# TYPE m gauge\n", &error));
    EXPECT_NE(error.find("TYPE after samples"), std::string::npos);

    EXPECT_FALSE(validatePrometheusText(
        "# TYPE m wibble\nm 1\n", &error));
    EXPECT_NE(error.find("unknown TYPE"), std::string::npos);

    // Interleaved families.
    EXPECT_FALSE(validatePrometheusText(
        "a 1\nb 2\na 3\n", &error));
    EXPECT_NE(error.find("not grouped"), std::string::npos);
}

TEST_F(PrometheusTest, ValidatorChecksHistogramInvariants)
{
    std::string error;

    // Missing +Inf bucket.
    EXPECT_FALSE(validatePrometheusText(
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 1\n"
        "h_sum 1\nh_count 1\n",
        &error));
    EXPECT_NE(error.find("+Inf"), std::string::npos);

    // Non-cumulative counts.
    EXPECT_FALSE(validatePrometheusText(
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 5\n"
        "h_bucket{le=\"2\"} 3\n"
        "h_bucket{le=\"+Inf\"} 5\n"
        "h_sum 1\nh_count 5\n",
        &error));
    EXPECT_NE(error.find("cumulative"), std::string::npos);

    // _count must equal the +Inf bucket.
    EXPECT_FALSE(validatePrometheusText(
        "# TYPE h histogram\n"
        "h_bucket{le=\"+Inf\"} 5\n"
        "h_sum 1\nh_count 4\n",
        &error));
    EXPECT_NE(error.find("disagrees"), std::string::npos);

    // A bare _bucket sample without the le label.
    EXPECT_FALSE(validatePrometheusText(
        "# TYPE h histogram\n"
        "h_bucket 5\n",
        &error));
    EXPECT_NE(error.find("without le"), std::string::npos);
}

TEST_F(PrometheusTest, RendererOutputOfGlobalRegistryValidates)
{
    // Whatever other tests left in the global registry must render
    // to a valid exposition — the property the CLI snapshot relies
    // on.
    MetricsRegistry::global().counter("prom_test.counter").inc();
    MetricsRegistry::global()
        .gauge("prom_test.gauge", {{"rack", "rack0"}})
        .set(1.0);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(
        renderPrometheus(MetricsRegistry::global()), &error))
        << error;
}

} // namespace
} // namespace obs
} // namespace heb

/**
 * @file
 * Profiler span-recording tests: spans are captured only while
 * enabled, tagged with per-thread ranks, kept start-ordered, and
 * dropped from the tail (earliest-window ring) once the ring fills.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/profile.h"

namespace heb {
namespace obs {
namespace {

class ProfileSpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        resetProfiling();
        setProfilingEnabled(true);
    }
    void TearDown() override
    {
        setProfileSpanRecording(false);
        setProfilingEnabled(false);
        resetProfiling();
    }
};

TEST_F(ProfileSpanTest, DisabledRecordsNoSpans)
{
    { HEB_PROF_SCOPE("span.disabled"); }
    EXPECT_TRUE(profileSpans().empty());
}

TEST_F(ProfileSpanTest, SpansCarrySiteAndOrdering)
{
    setProfileSpanRecording(true, 64);
    { HEB_PROF_SCOPE("span.first"); }
    { HEB_PROF_SCOPE("span.second"); }

    std::vector<ProfileSpan> spans = profileSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].site->name(), "span.first");
    EXPECT_EQ(spans[1].site->name(), "span.second");
    EXPECT_LE(spans[0].startNs, spans[1].startNs);
    // Both scopes ran on this thread -> one rank.
    EXPECT_EQ(spans[0].threadRank, spans[1].threadRank);
    EXPECT_EQ(spans[0].threadRank, profileThreadRank());
}

TEST_F(ProfileSpanTest, RingKeepsEarliestWindowAndCountsDrops)
{
    setProfileSpanRecording(true, 4);
    for (int i = 0; i < 10; ++i) {
        HEB_PROF_SCOPE("span.flood");
    }
    std::vector<ProfileSpan> spans = profileSpans();
    EXPECT_EQ(spans.size(), 4u);
    EXPECT_EQ(profileSpansDropped(), 6u);
    // Earliest window: the first four scopes survive, so the last
    // kept span starts no later than any dropped one would have.
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_LE(spans[i - 1].startNs, spans[i].startNs);
}

TEST_F(ProfileSpanTest, ThreadRanksAreSmallAndDistinct)
{
    setProfileSpanRecording(true, 256);
    unsigned main_rank = profileThreadRank();
    // Ranks are assigned once per thread and reused.
    EXPECT_EQ(profileThreadRank(), main_rank);

    unsigned other_rank = main_rank;
    std::thread worker([&] {
        other_rank = profileThreadRank();
        HEB_PROF_SCOPE("span.worker");
    });
    worker.join();
    EXPECT_NE(other_rank, main_rank);

    { HEB_PROF_SCOPE("span.main"); }

    std::set<unsigned> ranks;
    for (const ProfileSpan &span : profileSpans())
        ranks.insert(span.threadRank);
    EXPECT_EQ(ranks.size(), 2u);
    EXPECT_EQ(ranks.count(main_rank), 1u);
    EXPECT_EQ(ranks.count(other_rank), 1u);
}

TEST_F(ProfileSpanTest, ResetClearsSpansAndDropCounter)
{
    setProfileSpanRecording(true, 2);
    for (int i = 0; i < 5; ++i) {
        HEB_PROF_SCOPE("span.reset");
    }
    EXPECT_FALSE(profileSpans().empty());
    EXPECT_GT(profileSpansDropped(), 0u);
    resetProfiling();
    EXPECT_TRUE(profileSpans().empty());
    EXPECT_EQ(profileSpansDropped(), 0u);
}

} // namespace
} // namespace obs
} // namespace heb

/**
 * @file
 * TraceRecorder unit tests: ring wraparound with drop accounting,
 * oldest-first snapshots, the telemetry gate on activeTrace(), and
 * the JSONL/CSV flush formats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/trace.h"

namespace heb {
namespace obs {
namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        setActiveTrace(nullptr);
        setTelemetryLevel(TelemetryLevel::Off);
    }
};

TEST_F(TraceTest, RecordsUpToCapacity)
{
    TraceRecorder t(4);
    t.record(TraceEventKind::Tick, 0.0, {1.0});
    t.record(TraceEventKind::Tick, 1.0, {2.0});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.dropped(), 0u);

    auto events = t.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].timeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(events[0].values[0], 1.0);
    EXPECT_DOUBLE_EQ(events[1].timeSeconds, 1.0);
}

TEST_F(TraceTest, WraparoundKeepsNewestOldestFirst)
{
    TraceRecorder t(4);
    for (int i = 0; i < 10; ++i)
        t.record(TraceEventKind::Tick, static_cast<double>(i), {});
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);

    auto events = t.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(events[i].timeSeconds, 6.0 + i);
}

TEST_F(TraceTest, ClearDropsEverything)
{
    TraceRecorder t(2);
    for (int i = 0; i < 5; ++i)
        t.record(TraceEventKind::Shed, static_cast<double>(i), {1.0});
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST_F(TraceTest, ExtraValuesDroppedMissingReadZero)
{
    TraceRecorder t(2);
    t.record(TraceEventKind::Restart, 1.0,
             {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
    t.record(TraceEventKind::SocSample, 2.0, {0.5});
    auto events = t.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].values[kTraceEventFieldMax - 1], 6.0);
    EXPECT_DOUBLE_EQ(events[1].values[0], 0.5);
    EXPECT_DOUBLE_EQ(events[1].values[1], 0.0);
}

TEST_F(TraceTest, ActiveTraceRequiresFullLevelAndRecorder)
{
    TraceRecorder t(4);
    EXPECT_EQ(activeTrace(), nullptr);

    setActiveTrace(&t);
    setTelemetryLevel(TelemetryLevel::Metrics);
    EXPECT_EQ(activeTrace(), nullptr) << "Metrics level must not trace";

    setTelemetryLevel(TelemetryLevel::Full);
    EXPECT_EQ(activeTrace(), &t);

    setActiveTrace(nullptr);
    EXPECT_EQ(activeTrace(), nullptr);
}

TEST_F(TraceTest, SchemaNamesEveryKind)
{
    for (std::size_t i = 0; i < kTraceEventKinds; ++i) {
        auto kind = static_cast<TraceEventKind>(i);
        EXPECT_NE(traceEventKindName(kind), nullptr);
        const auto &fields = traceEventFields(kind);
        EXPECT_FALSE(fields.empty());
        EXPECT_LE(fields.size(), kTraceEventFieldMax);
    }
    EXPECT_STREQ(traceEventKindName(TraceEventKind::Tick), "tick");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::SlotPlan),
                 "slot_plan");
}

TEST_F(TraceTest, JsonlLinesAreSelfDescribing)
{
    TraceRecorder t(8);
    t.record(TraceEventKind::Tick, 1.0,
             {100.0, 90.0, 5.0, 5.0, 0.0, 90.0});
    t.record(TraceEventKind::Shed, 2.0, {12.0, 1.0, 5.0});

    std::string path = ::testing::TempDir() + "/trace_test.jsonl";
    t.writeJsonl(path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);

    EXPECT_NE(lines[0].find("\"t\": 1"), std::string::npos);
    EXPECT_NE(lines[0].find("\"type\": \"tick\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"demand_w\": 100"), std::string::npos);
    EXPECT_NE(lines[0].find("\"source_draw_w\": 90"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"type\": \"shed\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"servers_shed\": 1"),
              std::string::npos);
    for (const auto &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    std::remove(path.c_str());
}

TEST_F(TraceTest, CsvHasFixedHeaderAndTypeColumn)
{
    TraceRecorder t(8);
    t.record(TraceEventKind::Restart, 3.0, {6.0});

    std::string path = ::testing::TempDir() + "/trace_test.csv";
    t.writeCsv(path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].substr(0, 12), "seconds,type");
    EXPECT_NE(lines[1].find("restart"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace obs
} // namespace heb

/**
 * @file
 * Chrome trace_event exporter tests: event-object structure, span
 * and instant phase selection, per-rack track metadata, the degrade
 * action-name sync with core, and the end-to-end property that a
 * calm fleet's quiescent spans cover exactly
 * FleetResult::macroSpanTicks.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "core/schemes.h"
#include "fault/fault_plan.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "sim/fleet.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace obs {
namespace {

/**
 * Split the rendered document into its top-level event objects by
 * brace counting. Also checks overall balance — the cheap stand-in
 * for a full JSON parse.
 */
std::vector<std::string>
extractEvents(const std::string &doc)
{
    std::vector<std::string> events;
    const std::string open = "\"traceEvents\": [";
    std::size_t start = doc.find(open);
    EXPECT_NE(start, std::string::npos) << doc.substr(0, 200);
    int depth = 0;
    bool inString = false;
    std::size_t eventStart = 0;
    for (std::size_t i = start + open.size(); i < doc.size(); ++i) {
        char c = doc[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{') {
            if (depth++ == 0)
                eventStart = i;
        } else if (c == '}') {
            --depth;
            EXPECT_GE(depth, 0) << "unbalanced braces";
            if (depth == 0)
                events.push_back(
                    doc.substr(eventStart, i - eventStart + 1));
        } else if (c == ']' && depth == 0) {
            return events;
        }
    }
    ADD_FAILURE() << "traceEvents array never closed";
    return events;
}

/** Raw value of `"key": <value>` inside one event object. */
std::string
field(const std::string &event, const std::string &key)
{
    std::string needle = "\"" + key + "\": ";
    std::size_t at = event.find(needle);
    if (at == std::string::npos)
        return "";
    std::size_t start = at + needle.size();
    std::size_t end = start;
    if (event[start] == '"') {
        end = start + 1;
        while (end < event.size() && event[end] != '"')
            end += event[end] == '\\' ? 2 : 1;
        return event.substr(start + 1, end - start - 1);
    }
    while (end < event.size() && event[end] != ',' &&
           event[end] != '}')
        ++end;
    return event.substr(start, end - start);
}

TEST(ChromeTrace, QuiescentSpansAndCounters)
{
    TraceRecorder t(64);
    // Quiescent span recorded at its start, 30 ticks long.
    t.record(TraceEventKind::Quiescent, 100.0,
             {30.0, 120.0, 200.0, 1.5});
    t.record(TraceEventKind::Tick, 130.0,
             {120.0, 0.0, 0.0, 0.0, 0.0, 118.0});
    t.record(TraceEventKind::SocSample, 130.0, {0.8, 0.9});

    ChromeTraceOptions options;
    options.tickSeconds = 1.0;
    options.includeProfile = false;
    std::string doc = renderChromeTrace(t.snapshot(), options);
    std::vector<std::string> events = extractEvents(doc);
    // 2 metadata (process_name + one track) + 3 payload events.
    ASSERT_EQ(events.size(), 5u);

    const std::string &quiescent = events[2];
    EXPECT_EQ(field(quiescent, "ph"), "X");
    EXPECT_EQ(field(quiescent, "name"), "quiescent");
    EXPECT_EQ(field(quiescent, "ts"), "100000000");
    EXPECT_EQ(field(quiescent, "dur"), "30000000");
    EXPECT_EQ(field(quiescent, "ticks"), "30");

    const std::string &tick = events[3];
    EXPECT_EQ(field(tick, "ph"), "C");
    EXPECT_EQ(field(tick, "name"), "rack0 power");
    EXPECT_EQ(field(tick, "demand_w"), "120");
    EXPECT_EQ(field(tick, "source_draw_w"), "118");

    const std::string &soc = events[4];
    EXPECT_EQ(field(soc, "ph"), "C");
    EXPECT_EQ(field(soc, "name"), "rack0 soc");
}

TEST(ChromeTrace, TickSecondsScalesQuiescentSpans)
{
    TraceRecorder t(8);
    t.record(TraceEventKind::Quiescent, 0.0, {10.0, 0.0, 0.0, 0.0});
    ChromeTraceOptions options;
    options.tickSeconds = 0.5;
    options.includeProfile = false;
    std::string doc = renderChromeTrace(t.snapshot(), options);
    std::vector<std::string> events = extractEvents(doc);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(field(events[2], "dur"), "5000000");
}

TEST(ChromeTrace, FaultWindowsAndInstants)
{
    TraceRecorder t(16);
    // Timed fault activation -> a 60 s window.
    t.record(TraceEventKind::Fault, 10.0,
             {0.0, 1.0, 0.5, 60.0, 2.0});
    // Permanent derate (duration 0) -> an instant.
    t.record(TraceEventKind::Fault, 20.0,
             {1.0, 1.0, 0.25, 0.0, 0.0});
    // Clearance edge -> skipped (the window end already marks it).
    t.record(TraceEventKind::Fault, 70.0,
             {0.0, 0.0, 0.5, 0.0, 2.0});

    ChromeTraceOptions options;
    options.includeProfile = false;
    std::string doc = renderChromeTrace(t.snapshot(), options);
    std::vector<std::string> events = extractEvents(doc);
    ASSERT_EQ(events.size(), 4u); // 2 metadata + 2 faults

    EXPECT_EQ(field(events[2], "ph"), "X");
    EXPECT_EQ(field(events[2], "name"),
              fault::faultKindName(static_cast<fault::FaultKind>(0)));
    EXPECT_EQ(field(events[2], "dur"), "60000000");

    EXPECT_EQ(field(events[3], "ph"), "i");
    EXPECT_EQ(field(events[3], "name"),
              fault::faultKindName(static_cast<fault::FaultKind>(1)));
}

TEST(ChromeTrace, DegradeNamesMatchCore)
{
    // The exporter duplicates the action table because obs cannot
    // link core; this is the sync check the duplication relies on.
    TraceRecorder t(16);
    const DegradationAction actions[] = {
        DegradationAction::None, DegradationAction::Rebalanced,
        DegradationAction::BatteryOnly, DegradationAction::ScOnly,
        DegradationAction::Shed};
    for (DegradationAction a : actions) {
        t.record(TraceEventKind::Degrade, 1.0,
                 {static_cast<double>(a), 10.0, 20.0});
    }
    ChromeTraceOptions options;
    options.includeProfile = false;
    std::vector<std::string> events =
        extractEvents(renderChromeTrace(t.snapshot(), options));
    ASSERT_EQ(events.size(), 2u + 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(field(events[2 + i], "action"),
                  degradationActionName(actions[i]))
            << "action code " << i;
    }
}

TEST(ChromeTrace, EventsLandOnTheirRecordedTrack)
{
    TraceRecorder t(16);
    {
        ScopedTraceTrack track(3);
        t.record(TraceEventKind::Shed, 5.0, {10.0, 1.0, 5.0});
    }
    t.record(TraceEventKind::Restart, 6.0, {6.0});

    ChromeTraceOptions options;
    options.includeProfile = false;
    std::string doc = renderChromeTrace(t.snapshot(), options);
    std::vector<std::string> events = extractEvents(doc);
    // process_name + two thread_name records + two instants.
    ASSERT_EQ(events.size(), 5u);
    EXPECT_NE(doc.find("rack 3"), std::string::npos);
    EXPECT_EQ(field(events[3], "name"), "shed");
    EXPECT_EQ(field(events[3], "tid"), "3");
    EXPECT_EQ(field(events[4], "name"), "restart");
    EXPECT_EQ(field(events[4], "tid"), "0");
}

TEST(ChromeTrace, EmptyRecorderRendersEmptyDocument)
{
    TraceRecorder t(4);
    ChromeTraceOptions options;
    options.includeProfile = false;
    std::string doc = renderChromeTrace(t.snapshot(), options);
    EXPECT_TRUE(extractEvents(doc).empty());
}

/**
 * A calm fleet: jitter-free flat phases under budget — the regime
 * where the event engine takes fleet-wide macro-ticks (mirrors the
 * CalmRig in fleet_test.cpp).
 */
ProfileParams
calmProfile(const char *name, double high_util)
{
    ProfileParams p;
    p.name = name;
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

TEST(ChromeTrace, QuiescentSpansCoverMacroSpanTicks)
{
    setTelemetryLevel(TelemetryLevel::Full);
    TraceRecorder trace(1 << 18);
    setActiveTrace(&trace);

    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    const double utils[2] = {0.30, 0.15};
    const char *names[2] = {"CA", "CB"};
    for (std::size_t i = 0; i < 2; ++i) {
        workloads.push_back(std::make_unique<SyntheticWorkload>(
            calmProfile(names[i], utils[i]), i + 1));
        schemes.push_back(makeScheme(SchemeKind::HebD));
        specs.push_back(RackSpec{"rack" + std::to_string(i),
                                 workloads[i].get(),
                                 schemes[i].get()});
    }
    FleetResult r =
        FleetSimulator(cfg, 2.0 * 260.0,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Event, true})
            .run(specs);
    setActiveTrace(nullptr);
    setTelemetryLevel(TelemetryLevel::Off);

    ASSERT_GT(r.macroSpanTicks, 0ul)
        << "calm fleet never engaged the event engine";
    ASSERT_EQ(trace.dropped(), 0u)
        << "ring overflow would undercount spans";

    // Per-rack quiescent spans, summed over the whole fleet, must
    // cover exactly the ticks the engine advanced in macro-spans.
    ChromeTraceOptions options;
    options.tickSeconds = cfg.tickSeconds;
    options.includeProfile = false;
    std::vector<std::string> events =
        extractEvents(renderChromeTrace(trace.snapshot(), options));
    std::map<std::string, double> ticksByTrack;
    double totalTicks = 0.0;
    for (const std::string &ev : events) {
        if (field(ev, "name") != "quiescent")
            continue;
        double ticks = std::stod(field(ev, "ticks"));
        ticksByTrack[field(ev, "tid")] += ticks;
        totalTicks += ticks;
        // Span length on the timeline = ticks x tickSeconds.
        EXPECT_EQ(std::stod(field(ev, "dur")),
                  ticks * cfg.tickSeconds * 1e6);
    }
    EXPECT_EQ(ticksByTrack.size(), 2u)
        << "each rack should own a track";
    // Every rack advances through every fleet-wide macro-span, so
    // each track individually covers macroSpanTicks.
    for (const auto &[tid, ticks] : ticksByTrack) {
        EXPECT_EQ(ticks, static_cast<double>(r.macroSpanTicks))
            << "track " << tid;
    }
    EXPECT_EQ(totalTicks,
              2.0 * static_cast<double>(r.macroSpanTicks));
}

} // namespace
} // namespace obs
} // namespace heb

/**
 * @file
 * End-to-end batched-vs-scalar equivalence and plan sharing.
 *
 * The SoA batch kernels (DESIGN.md §13) must be invisible above the
 * pool: full Simulator and FleetSimulator runs — faults, outages,
 * fast-forward, shared shard arenas, any worker count — serialize
 * byte-identically whether batching is on or off. The shared plan
 * cache must likewise be invisible: a cache-shared solar trace or
 * workload plan is the same object the private constructor builds.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "esd/soa_bank.h"
#include "power/solar_array.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "sim/plan_cache.h"
#include "sim/result_io.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

/** Restore the global batching switch even when a test fails. */
class BatchingGuard
{
  public:
    explicit BatchingGuard(bool on) : prev_(soaBatchingEnabled())
    {
        setSoaBatchingEnabled(on);
    }
    ~BatchingGuard() { setSoaBatchingEnabled(prev_); }

  private:
    bool prev_;
};

/** A faulty, outage-ridden scenario; the hard case for identity. */
SimConfig
stressConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0;
    cfg.outages = {{1.0 * 3600.0, 300.0}, {3.0 * 3600.0, 120.0}};
    cfg.faultInjection = true;
    return cfg;
}

std::string
runBatched(const SimConfig &cfg, const std::string &workload,
           SchemeKind kind, bool batched)
{
    BatchingGuard guard(batched);
    return simResultToJson(runOne(cfg, workload, kind));
}

TEST(SoaEquivalence, SimulatorIdenticalUnderFaultsHebD)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runBatched(cfg, "TS", SchemeKind::HebD, false),
              runBatched(cfg, "TS", SchemeKind::HebD, true));
}

TEST(SoaEquivalence, SimulatorIdenticalUnderFaultsBaOnly)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runBatched(cfg, "WC", SchemeKind::BaOnly, false),
              runBatched(cfg, "WC", SchemeKind::BaOnly, true));
}

TEST(SoaEquivalence, SimulatorIdenticalWithFastForward)
{
    SimConfig cfg = stressConfig();
    cfg.fastForward = true;
    EXPECT_EQ(runBatched(cfg, "WS", SchemeKind::HebD, false),
              runBatched(cfg, "WS", SchemeKind::HebD, true));
}

/** The cache-shared solar trace is the privately-generated trace. */
TEST(SoaEquivalence, SharedSolarTraceBitIdentical)
{
    SimConfig cfg;
    SolarArray priv(cfg.solarParams, 6.0 * 3600.0, 1.0, cfg.seed);
    auto shared = SharedPlanCache::global().solarTrace(
        cfg.solarParams, 6.0 * 3600.0, 1.0, cfg.seed);
    ASSERT_EQ(shared->size(), priv.trace().size());
    for (std::size_t i = 0; i < shared->size(); ++i)
        ASSERT_EQ((*shared)[i], priv.trace()[i]) << "sample " << i;
    // Second lookup is a hit on the same immutable object.
    auto again = SharedPlanCache::global().solarTrace(
        cfg.solarParams, 6.0 * 3600.0, 1.0, cfg.seed);
    EXPECT_EQ(again.get(), shared.get());
}

/** The cache-shared workload plan behaves as a private instance. */
TEST(SoaEquivalence, SharedWorkloadPlanMatchesPrivate)
{
    auto shared = SharedPlanCache::global().workload("TS", 42);
    auto priv = makeWorkload("TS", 42);
    for (double t : {0.0, 17.0, 333.0, 4096.0, 86399.0}) {
        for (std::size_t s : {std::size_t{0}, std::size_t{3}})
            ASSERT_EQ(shared->utilization(s, t),
                      priv->utilization(s, t));
    }
    auto again = SharedPlanCache::global().workload("TS", 42);
    EXPECT_EQ(again.get(), shared.get());
    // A different seed is a different plan.
    auto other = SharedPlanCache::global().workload("TS", 43);
    EXPECT_NE(other.get(), shared.get());
}

/** Fleet fingerprint minus engine statistics (those legitimately
 *  differ between batch on/off — e.g. shardKernelSpans). */
std::string
fleetPrint(const FleetResult &r)
{
    char buf[400];
    std::snprintf(buf, sizeof buf,
                  "%.17g %.17g %.17g %.17g %.17g %.17g",
                  r.totalDowntimeSeconds, r.totalUnservedWh,
                  r.totalServedWh, r.facilityPeakDrawW,
                  r.meanEfficiency, r.meanEfficiencyUnweighted);
    return buf;
}

struct FleetRig
{
    /**
     * @param calm  Calm low-duty profiles (no jitter/stagger) so the
     *              event engine finds fleet-wide bank-idle spans;
     *              otherwise the paper's jittery TS/WC/MS mix.
     */
    explicit FleetRig(bool calm, bool faults)
    {
        cfg.durationSeconds = (calm ? 6.0 : 3.0) * 3600.0;
        cfg.faultInjection = faults;
        cfg.recordSeries = false;
        if (calm) {
            // Frequent, long converter trips: while the buffer
            // stage is down every rack reports banksIdleForSpan(),
            // which is what lets a committed macro-tick span step
            // the whole shard through the SoA arena.
            cfg.faultPlan.converterTripsPerDay = 48.0;
            cfg.faultPlan.converterRestartSeconds = 1800.0;
            const double utils[3] = {0.30, 0.22, 0.10};
            const char *names[3] = {"CA", "CB", "CC"};
            for (std::size_t i = 0; i < 3; ++i) {
                ProfileParams p;
                p.name = names[i];
                p.peakClass = PeakClass::Large;
                p.highUtil = utils[i];
                p.lowUtil = 0.05;
                p.highPhaseS = 900.0;
                p.lowPhaseS = 4500.0;
                p.jitter = 0.0;
                p.diurnalDepth = 0.0;
                p.serverStagger = 0.0;
                calm_workloads.push_back(
                    std::make_shared<const SyntheticWorkload>(p,
                                                              i + 1));
            }
            workloads = calm_workloads;
        } else {
            for (const char *w : {"TS", "WC", "MS"})
                workloads.push_back(
                    SharedPlanCache::global().workload(w, cfg.seed));
        }
    }

    FleetResult
    run(bool batched)
    {
        BatchingGuard guard(batched);
        // Fresh schemes per run: they carry mutable state.
        schemes.clear();
        specs.clear();
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            schemes.push_back(makeScheme(SchemeKind::HebD));
            specs.push_back(RackSpec{
                "rack" + std::to_string(i), workloads[i].get(),
                schemes[i].get()});
        }
        FleetOptions options{BudgetPolicy::Proportional,
                             FleetMode::Event, false};
        FleetSimulator fleet(cfg, 3.0 * 260.0, options);
        return fleet.run(specs);
    }

    SimConfig cfg;
    std::vector<std::shared_ptr<const SyntheticWorkload>> calm_workloads;
    std::vector<std::shared_ptr<const SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

TEST(SoaEquivalence, FleetSlimArenaOnOffIdenticalUnderFaults)
{
    FleetRig rig(false, true);
    FleetResult batched = rig.run(true);
    FleetResult scalar = rig.run(false);
    EXPECT_EQ(fleetPrint(scalar), fleetPrint(batched));
}

TEST(SoaEquivalence, FleetShardKernelEngagesOnCalmFleet)
{
    // Faults on: the shared FaultPlan trips every rack's buffer
    // stage in the same windows, and with the stage down a rack is
    // bank-idle by definition — so whole-fleet idle spans arise.
    FleetRig rig(true, true);
    FleetResult batched = rig.run(true);
    FleetResult scalar = rig.run(false);
    EXPECT_EQ(fleetPrint(scalar), fleetPrint(batched));
    // The batched slim event run actually exercised the shared
    // shard arenas: bank-idle macro-ticks advanced whole shards
    // with one kernel invocation.
    EXPECT_GT(batched.shardKernelSpans, 0u);
    EXPECT_EQ(scalar.shardKernelSpans, 0u);
}

TEST(SoaEquivalence, FleetJobs1VsNIdentical)
{
    FleetRig rig(false, true);
    ThreadPool::configureGlobal(1);
    FleetResult serial = rig.run(true);
    ThreadPool::configureGlobal(4);
    FleetResult parallel = rig.run(true);
    ThreadPool::configureGlobal(0); // restore default sizing
    EXPECT_EQ(fleetPrint(serial), fleetPrint(parallel));
}

} // namespace
} // namespace heb

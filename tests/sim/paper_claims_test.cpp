/**
 * @file
 * Regression gate on the paper's qualitative claims.
 *
 * These integration tests pin the *shape* of the reproduction: if a
 * model change flips one of the orderings the paper reports, CI
 * fails here rather than silently shipping a broken Fig. 12. Runs
 * use one day and a reduced workload set to stay fast.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

/** One-day comparison over a representative workload pair. */
class PaperClaims : public testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SimConfig cfg;
        cfg.durationSeconds = 24.0 * 3600.0;
        rows_ = new std::vector<SchemeSummary>(compareSchemes(
            cfg, {"WC", "TS"}, allSchemeKinds()));

        SimConfig solar = cfg;
        solar.solarPowered = true;
        solar.solarParams.ratedPowerW = 450.0;
        solar.solarParams.pLeaveClear = 0.15;
        solar.solarParams.pLeavePartly = 0.15;
        solar.solarParams.pLeaveOvercast = 0.12;
        solar.solarParams.overcastFactor = 0.08;
        solar_rows_ = new std::vector<SchemeSummary>(compareSchemes(
            solar, {"WS", "TS"}, allSchemeKinds()));
    }

    static void
    TearDownTestSuite()
    {
        delete rows_;
        delete solar_rows_;
        rows_ = nullptr;
        solar_rows_ = nullptr;
    }

    static const SchemeSummary &
    row(const char *name)
    {
        for (const auto &r : *rows_) {
            if (r.scheme == name)
                return r;
        }
        ADD_FAILURE() << "missing scheme " << name;
        return rows_->front();
    }

    static const SchemeSummary &
    solarRow(const char *name)
    {
        for (const auto &r : *solar_rows_) {
            if (r.scheme == name)
                return r;
        }
        ADD_FAILURE() << "missing scheme " << name;
        return solar_rows_->front();
    }

    static std::vector<SchemeSummary> *rows_;
    static std::vector<SchemeSummary> *solar_rows_;
};

std::vector<SchemeSummary> *PaperClaims::rows_ = nullptr;
std::vector<SchemeSummary> *PaperClaims::solar_rows_ = nullptr;

TEST_F(PaperClaims, HebBeatsBaOnlyOnEfficiency)
{
    EXPECT_GT(row("HEB-D").energyEfficiency,
              row("BaOnly").energyEfficiency);
}

TEST_F(PaperClaims, HebBeatsBaOnlyOnDowntime)
{
    EXPECT_LT(row("HEB-D").downtimeSeconds,
              row("BaOnly").downtimeSeconds);
}

TEST_F(PaperClaims, HebExtendsBatteryLifetime)
{
    EXPECT_GT(row("HEB-D").batteryLifetimeYears,
              row("BaOnly").batteryLifetimeYears);
}

TEST_F(PaperClaims, BaFirstEfficiencyClosestToBaOnly)
{
    // Paper: "BaFirst is very close to a battery only design".
    double base = row("BaOnly").energyEfficiency;
    double ba_first_gap = row("BaFirst").energyEfficiency - base;
    double heb_gap = row("HEB-D").energyEfficiency - base;
    EXPECT_LT(ba_first_gap, heb_gap);
}

TEST_F(PaperClaims, BaFirstWorstBatteryLifetime)
{
    for (const char *other : {"SCFirst", "HEB-F", "HEB-S", "HEB-D"}) {
        EXPECT_LT(row("BaFirst").batteryLifetimeYears,
                  row(other).batteryLifetimeYears)
            << other;
    }
}

TEST_F(PaperClaims, ScFirstPaysOnLargePeaks)
{
    // SCFirst is not deployable: its downtime exceeds every HEB
    // variant's (SCs die mid-peak, the battery alone cannot carry).
    EXPECT_GT(row("SCFirst").downtimeSeconds,
              row("HEB-D").downtimeSeconds);
}

TEST_F(PaperClaims, HebDNoWorseThanNaivePrediction)
{
    EXPECT_LE(row("HEB-D").downtimeSeconds,
              row("HEB-F").downtimeSeconds * 1.05);
}

TEST_F(PaperClaims, SmallPeaksGainMoreThanLargeOnEfficiency)
{
    // Paper: +52.5 % small vs +27.1 % large.
    double small_gain = row("HEB-D").energyEfficiencySmall -
                        row("BaOnly").energyEfficiencySmall;
    double large_gain = row("HEB-D").energyEfficiencyLarge -
                        row("BaOnly").energyEfficiencyLarge;
    EXPECT_GT(small_gain, large_gain);
}

TEST_F(PaperClaims, ScChargingLiftsReu)
{
    EXPECT_GT(solarRow("HEB-D").reu, solarRow("BaOnly").reu * 1.05);
    EXPECT_GT(solarRow("SCFirst").reu, solarRow("BaOnly").reu * 1.05);
}

TEST_F(PaperClaims, ScFirstAndHebSimilarReu)
{
    // Paper: "they have very similar REU".
    EXPECT_NEAR(solarRow("SCFirst").reu, solarRow("HEB-D").reu,
                0.05);
}

TEST_F(PaperClaims, BaFirstReuBetweenBaOnlyAndScFirst)
{
    EXPECT_GT(solarRow("BaFirst").reu, solarRow("BaOnly").reu);
    EXPECT_LT(solarRow("BaFirst").reu,
              solarRow("SCFirst").reu + 0.02);
}

} // namespace
} // namespace heb

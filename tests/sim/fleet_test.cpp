/** @file Multi-rack fleet with shared-budget arbitration. */

#include <string>

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

struct FleetRig
{
    FleetRig()
    {
        cfg.durationSeconds = 4.0 * 3600.0;
        for (const char *w : {"TS", "WC", "MS"}) {
            workloads.push_back(makeWorkload(w));
            schemes.push_back(makeScheme(SchemeKind::HebD));
        }
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            specs.push_back(RackSpec{
                "rack" + std::to_string(i), workloads[i].get(),
                schemes[i].get()});
        }
    }

    SimConfig cfg;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

TEST(Fleet, RunsThreeRacks)
{
    FleetRig rig;
    FleetSimulator fleet(rig.cfg, 3.0 * 260.0,
                         BudgetPolicy::Static);
    FleetResult r = fleet.run(rig.specs);
    ASSERT_EQ(r.racks.size(), 3u);
    EXPECT_EQ(r.racks[0].workloadName, "TS");
    EXPECT_GT(r.racks[1].ledger.servedWh(), 0.0);
    EXPECT_GT(r.meanEfficiency, 0.5);
}

TEST(Fleet, FacilityPeakBounded)
{
    FleetRig rig;
    double budget = 3.0 * 260.0;
    FleetSimulator fleet(rig.cfg, budget,
                         BudgetPolicy::Proportional);
    FleetResult r = fleet.run(rig.specs);
    EXPECT_LE(r.facilityPeakDrawW, budget + 1e-6);
}

TEST(Fleet, ProportionalBeatsStaticUnderSkew)
{
    // One hungry rack (TS) next to two quiet ones: moving spare
    // budget to the hungry rack must not hurt, and should reduce
    // total unserved energy.
    FleetRig rig_static;
    FleetSimulator fs(rig_static.cfg, 3.0 * 245.0,
                      BudgetPolicy::Static);
    FleetResult stat = fs.run(rig_static.specs);

    FleetRig rig_prop;
    FleetSimulator fp(rig_prop.cfg, 3.0 * 245.0,
                      BudgetPolicy::Proportional);
    FleetResult prop = fp.run(rig_prop.specs);

    EXPECT_LE(prop.totalUnservedWh, stat.totalUnservedWh + 1e-6);
    EXPECT_LE(prop.totalDowntimeSeconds,
              stat.totalDowntimeSeconds + 1.0);
}

TEST(Fleet, PerRackMetricsIndependent)
{
    FleetRig rig;
    FleetSimulator fleet(rig.cfg, 3.0 * 260.0,
                         BudgetPolicy::Static);
    FleetResult r = fleet.run(rig.specs);
    // The large-peak rack cycles its buffers harder than the
    // media-streaming rack.
    EXPECT_GT(r.racks[0].ledger.bufferToLoadWh(),
              r.racks[2].ledger.bufferToLoadWh());
}

TEST(Fleet, SingleRackMatchesSimulatorShape)
{
    FleetRig rig;
    std::vector<RackSpec> one = {rig.specs[1]}; // WC
    FleetSimulator fleet(rig.cfg, 260.0, BudgetPolicy::Static);
    FleetResult r = fleet.run(one);
    ASSERT_EQ(r.racks.size(), 1u);
    EXPECT_GT(r.racks[0].energyEfficiency, 0.8);
}

TEST(Fleet, InvalidInputsFatal)
{
    FleetRig rig;
    EXPECT_EXIT(FleetSimulator(rig.cfg, 0.0, BudgetPolicy::Static),
                testing::ExitedWithCode(1), "budget");
    FleetSimulator fleet(rig.cfg, 100.0, BudgetPolicy::Static);
    EXPECT_EXIT(fleet.run({}), testing::ExitedWithCode(1),
                "at least one rack");
    std::vector<RackSpec> bad = {
        RackSpec{"r0", nullptr, rig.schemes[0].get()}};
    EXPECT_EXIT(fleet.run(bad), testing::ExitedWithCode(1),
                "missing");
}

TEST(Fleet, PolicyNames)
{
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::Static), "static");
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::Proportional),
                 "proportional");
    EXPECT_STREQ(fleetModeName(FleetMode::Dense), "dense");
    EXPECT_STREQ(fleetModeName(FleetMode::Event), "event");
}

TEST(Fleet, DuplicateSchemeInstanceFatal)
{
    FleetRig rig;
    std::vector<RackSpec> bad = {
        RackSpec{"r0", rig.workloads[0].get(),
                 rig.schemes[0].get()},
        RackSpec{"r1", rig.workloads[1].get(),
                 rig.schemes[0].get()}};
    FleetSimulator fleet(rig.cfg, 2.0 * 260.0,
                         BudgetPolicy::Static);
    EXPECT_EXIT(fleet.run(bad), testing::ExitedWithCode(1),
                "shares a scheme");
}

/**
 * Two deliberately asymmetric racks: one loaded, one near-idle. The
 * fleet mean efficiency must be the served-energy-weighted mean, not
 * the unweighted arithmetic mean the near-idle rack used to bias.
 */
TEST(Fleet, MeanEfficiencyIsServedEnergyWeighted)
{
    ProfileParams busy;
    busy.name = "BUSY";
    busy.peakClass = PeakClass::Large;
    busy.highUtil = 0.95;
    busy.lowUtil = 0.85;
    ProfileParams idle = busy;
    idle.name = "IDLE";
    idle.highUtil = 0.05;
    idle.lowUtil = 0.02;

    SyntheticWorkload busy_w(busy, 1), idle_w(idle, 2);
    auto s0 = makeScheme(SchemeKind::HebD);
    auto s1 = makeScheme(SchemeKind::HebD);
    std::vector<RackSpec> specs = {
        RackSpec{"busy", &busy_w, s0.get()},
        RackSpec{"idle", &idle_w, s1.get()}};

    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0;
    FleetSimulator fleet(cfg, 2.0 * 260.0, BudgetPolicy::Static);
    FleetResult r = fleet.run(specs);
    ASSERT_EQ(r.racks.size(), 2u);

    double e0 = r.racks[0].energyEfficiency;
    double e1 = r.racks[1].energyEfficiency;
    double s0wh = r.racks[0].ledger.servedWh();
    double s1wh = r.racks[1].ledger.servedWh();
    // The 30 W/server idle floor bounds how asymmetric equal-sized
    // racks can get; ~1.5x served energy is plenty to expose an
    // unweighted mean.
    ASSERT_GT(s0wh, 1.3 * s1wh) << "racks not asymmetric enough";

    EXPECT_DOUBLE_EQ(r.meanEfficiencyUnweighted, (e0 + e1) / 2.0);
    EXPECT_DOUBLE_EQ(r.meanEfficiency,
                     (e0 * s0wh + e1 * s1wh) / (s0wh + s1wh));
    EXPECT_DOUBLE_EQ(r.totalServedWh, s0wh + s1wh);
}

/**
 * A calm fleet: jitter-free flat phases, everything under budget —
 * the regime where the event engine should take fleet-wide
 * macro-ticks.
 */
ProfileParams
calmProfile(const char *name, double high_util)
{
    ProfileParams p;
    p.name = name;
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

struct CalmRig
{
    explicit CalmRig(bool faults, double hours = 6.0)
    {
        cfg.durationSeconds = hours * 3600.0;
        cfg.faultInjection = faults;
        const double utils[3] = {0.30, 0.22, 0.10};
        const char *names[3] = {"CA", "CB", "CC"};
        for (std::size_t i = 0; i < 3; ++i) {
            workloads.push_back(
                std::make_unique<SyntheticWorkload>(
                    calmProfile(names[i], utils[i]), i + 1));
            schemes.push_back(makeScheme(SchemeKind::HebD));
            specs.push_back(RackSpec{"rack" + std::to_string(i),
                                     workloads[i].get(),
                                     schemes[i].get()});
        }
    }

    SimConfig cfg;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

/** All per-rack results rendered through the %.17g witness. */
std::string
fleetJson(const FleetResult &r)
{
    std::string out;
    for (const SimResult &rack : r.racks) {
        out += simResultToJson(rack);
        out += '\n';
    }
    return out;
}

void
expectAggregatesIdentical(const FleetResult &a, const FleetResult &b)
{
    // Bitwise: the event engine claims exactness, not closeness.
    EXPECT_EQ(a.facilityPeakDrawW, b.facilityPeakDrawW);
    EXPECT_EQ(a.totalUnservedWh, b.totalUnservedWh);
    EXPECT_EQ(a.totalServedWh, b.totalServedWh);
    EXPECT_EQ(a.totalDowntimeSeconds, b.totalDowntimeSeconds);
    EXPECT_EQ(a.meanEfficiency, b.meanEfficiency);
    EXPECT_EQ(a.meanEfficiencyUnweighted,
              b.meanEfficiencyUnweighted);
}

TEST(FleetEvent, IdenticalToDenseUnderFaultsProportional)
{
    const double budget = 3.0 * 260.0;
    CalmRig dense_rig(true), event_rig(true);
    FleetResult dense =
        FleetSimulator(dense_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Proportional,
                                    FleetMode::Dense, true})
            .run(dense_rig.specs);
    FleetResult event =
        FleetSimulator(event_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Proportional,
                                    FleetMode::Event, true})
            .run(event_rig.specs);
    ASSERT_EQ(dense.racks.size(), event.racks.size());
    for (std::size_t r = 0; r < dense.racks.size(); ++r) {
        EXPECT_EQ(simResultToJson(dense.racks[r]),
                  simResultToJson(event.racks[r]))
            << "rack " << r << " diverged";
    }
    expectAggregatesIdentical(dense, event);
}

TEST(FleetEvent, IdenticalToDenseOnJitteryWorkloads)
{
    // TS/WC/MS jitter every tick, so the event engine rarely (if
    // ever) engages — but it must still be exact, not just when the
    // kernel runs.
    const double budget = 3.0 * 260.0;
    FleetRig dense_rig, event_rig;
    FleetResult dense =
        FleetSimulator(dense_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Dense, true})
            .run(dense_rig.specs);
    FleetResult event =
        FleetSimulator(event_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Event, true})
            .run(event_rig.specs);
    EXPECT_EQ(fleetJson(dense), fleetJson(event));
    expectAggregatesIdentical(dense, event);
}

TEST(FleetEvent, EngagesOnCalmFleet)
{
    CalmRig rig(false, 8.0);
    FleetResult r =
        FleetSimulator(rig.cfg, 3.0 * 260.0,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Event, true})
            .run(rig.specs);
    const auto ticks = static_cast<unsigned long>(8.0 * 3600.0);
    EXPECT_EQ(r.denseTicks + r.macroSpanTicks, ticks);
    EXPECT_GT(r.macroSpans, 10ul)
        << "event engine never engaged on a calm fleet";
    // Calm spans should dominate: the engine is the point at scale.
    EXPECT_GT(r.macroSpanTicks, r.denseTicks);
}

TEST(FleetEvent, JobCountDoesNotChangeResults)
{
    const double budget = 3.0 * 260.0;
    ThreadPool::configureGlobal(1);
    CalmRig serial_rig(true);
    FleetResult serial =
        FleetSimulator(serial_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Proportional,
                                    FleetMode::Event, true})
            .run(serial_rig.specs);
    ThreadPool::configureGlobal(4);
    CalmRig pooled_rig(true);
    FleetResult pooled =
        FleetSimulator(pooled_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Proportional,
                                    FleetMode::Event, true})
            .run(pooled_rig.specs);
    ThreadPool::configureGlobal(0);
    EXPECT_EQ(fleetJson(serial), fleetJson(pooled));
    expectAggregatesIdentical(serial, pooled);
}

TEST(FleetEvent, DroppedPerRackResultsKeepAggregates)
{
    const double budget = 3.0 * 260.0;
    CalmRig kept_rig(false);
    FleetResult kept =
        FleetSimulator(kept_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Event, true})
            .run(kept_rig.specs);
    CalmRig slim_rig(false);
    slim_rig.cfg.recordSeries = false;
    FleetResult slim =
        FleetSimulator(slim_rig.cfg, budget,
                       FleetOptions{BudgetPolicy::Static,
                                    FleetMode::Event, false})
            .run(slim_rig.specs);
    EXPECT_TRUE(slim.racks.empty());
    expectAggregatesIdentical(kept, slim);
}

} // namespace
} // namespace heb

/** @file Multi-rack fleet with shared-budget arbitration. */

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "sim/fleet.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

struct FleetRig
{
    FleetRig()
    {
        cfg.durationSeconds = 4.0 * 3600.0;
        for (const char *w : {"TS", "WC", "MS"}) {
            workloads.push_back(makeWorkload(w));
            schemes.push_back(makeScheme(SchemeKind::HebD));
        }
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            specs.push_back(RackSpec{
                "rack" + std::to_string(i), workloads[i].get(),
                schemes[i].get()});
        }
    }

    SimConfig cfg;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

TEST(Fleet, RunsThreeRacks)
{
    FleetRig rig;
    FleetSimulator fleet(rig.cfg, 3.0 * 260.0,
                         BudgetPolicy::Static);
    FleetResult r = fleet.run(rig.specs);
    ASSERT_EQ(r.racks.size(), 3u);
    EXPECT_EQ(r.racks[0].workloadName, "TS");
    EXPECT_GT(r.racks[1].ledger.servedWh(), 0.0);
    EXPECT_GT(r.meanEfficiency, 0.5);
}

TEST(Fleet, FacilityPeakBounded)
{
    FleetRig rig;
    double budget = 3.0 * 260.0;
    FleetSimulator fleet(rig.cfg, budget,
                         BudgetPolicy::Proportional);
    FleetResult r = fleet.run(rig.specs);
    EXPECT_LE(r.facilityPeakDrawW, budget + 1e-6);
}

TEST(Fleet, ProportionalBeatsStaticUnderSkew)
{
    // One hungry rack (TS) next to two quiet ones: moving spare
    // budget to the hungry rack must not hurt, and should reduce
    // total unserved energy.
    FleetRig rig_static;
    FleetSimulator fs(rig_static.cfg, 3.0 * 245.0,
                      BudgetPolicy::Static);
    FleetResult stat = fs.run(rig_static.specs);

    FleetRig rig_prop;
    FleetSimulator fp(rig_prop.cfg, 3.0 * 245.0,
                      BudgetPolicy::Proportional);
    FleetResult prop = fp.run(rig_prop.specs);

    EXPECT_LE(prop.totalUnservedWh, stat.totalUnservedWh + 1e-6);
    EXPECT_LE(prop.totalDowntimeSeconds,
              stat.totalDowntimeSeconds + 1.0);
}

TEST(Fleet, PerRackMetricsIndependent)
{
    FleetRig rig;
    FleetSimulator fleet(rig.cfg, 3.0 * 260.0,
                         BudgetPolicy::Static);
    FleetResult r = fleet.run(rig.specs);
    // The large-peak rack cycles its buffers harder than the
    // media-streaming rack.
    EXPECT_GT(r.racks[0].ledger.bufferToLoadWh(),
              r.racks[2].ledger.bufferToLoadWh());
}

TEST(Fleet, SingleRackMatchesSimulatorShape)
{
    FleetRig rig;
    std::vector<RackSpec> one = {rig.specs[1]}; // WC
    FleetSimulator fleet(rig.cfg, 260.0, BudgetPolicy::Static);
    FleetResult r = fleet.run(one);
    ASSERT_EQ(r.racks.size(), 1u);
    EXPECT_GT(r.racks[0].energyEfficiency, 0.8);
}

TEST(Fleet, InvalidInputsFatal)
{
    FleetRig rig;
    EXPECT_EXIT(FleetSimulator(rig.cfg, 0.0, BudgetPolicy::Static),
                testing::ExitedWithCode(1), "budget");
    FleetSimulator fleet(rig.cfg, 100.0, BudgetPolicy::Static);
    EXPECT_EXIT(fleet.run({}), testing::ExitedWithCode(1),
                "at least one rack");
    std::vector<RackSpec> bad = {
        RackSpec{"r0", nullptr, rig.schemes[0].get()}};
    EXPECT_EXIT(fleet.run(bad), testing::ExitedWithCode(1),
                "missing");
}

TEST(Fleet, PolicyNames)
{
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::Static), "static");
    EXPECT_STREQ(budgetPolicyName(BudgetPolicy::Proportional),
                 "proportional");
}

} // namespace
} // namespace heb

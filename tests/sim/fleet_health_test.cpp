/**
 * @file
 * Fleet health aggregator tests: the slim streaming rollup must be
 * byte-identical to a full per-rack run, folded finals must equal
 * the kept SimResults field-for-field, and the live sampling /
 * watch-callback path must fire on schedule.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "fault/fault_plan.h"
#include "sim/fleet.h"
#include "sim/fleet_health.h"
#include "util/format.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

/** Jitter-free flat phases (mirrors the CalmRig in fleet_test.cpp)
 *  so the event engine engages and both runs exercise macro-spans. */
ProfileParams
calmProfile(const char *name, double high_util)
{
    ProfileParams p;
    p.name = name;
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

struct CalmRig
{
    explicit CalmRig(bool faults, double hours = 6.0)
    {
        cfg.durationSeconds = hours * 3600.0;
        cfg.faultInjection = faults;
        const double utils[3] = {0.30, 0.22, 0.10};
        const char *names[3] = {"CA", "CB", "CC"};
        for (std::size_t i = 0; i < 3; ++i) {
            workloads.push_back(
                std::make_unique<SyntheticWorkload>(
                    calmProfile(names[i], utils[i]), i + 1));
            schemes.push_back(makeScheme(SchemeKind::HebD));
            specs.push_back(RackSpec{"rack" + std::to_string(i),
                                     workloads[i].get(),
                                     schemes[i].get()});
        }
    }

    SimConfig cfg;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

/** One fleet run plus the aggregator it fed. */
struct HealthRun
{
    FleetResult result;
    FleetHealthAggregator health;
};

constexpr double kBudget = 3.0 * 260.0;
constexpr double kSampleSeconds = 600.0;

HealthRun
runCalmFleet(bool keep_per_rack)
{
    CalmRig rig(/*faults=*/true);
    if (!keep_per_rack)
        rig.cfg.recordSeries = false;
    HealthRun out;
    FleetOptions options{BudgetPolicy::Static, FleetMode::Event,
                         keep_per_rack};
    options.health = &out.health;
    options.healthSampleSeconds = kSampleSeconds;
    out.result = FleetSimulator(rig.cfg, kBudget, options)
                     .run(rig.specs);
    return out;
}

/** The full (per-rack results kept) run, computed once. */
const HealthRun &
fullRun()
{
    static const HealthRun *run = new HealthRun(runCalmFleet(true));
    return *run;
}

/** The slim (results dropped, series off) run, computed once. */
const HealthRun &
slimRun()
{
    static const HealthRun *run =
        new HealthRun(runCalmFleet(false));
    return *run;
}

TEST(FleetHealth, SlimRollupMatchesFullRunBitForBit)
{
    const HealthRun &full = fullRun();
    const HealthRun &slim = slimRun();
    ASSERT_EQ(full.result.racks.size(), 3u);
    EXPECT_TRUE(slim.result.racks.empty());
    // The whole point of the aggregator: dropping per-rack results
    // and per-tick series must not move a single bit of the rollup.
    EXPECT_EQ(full.health.toJson(), slim.health.toJson());
    EXPECT_EQ(full.health.textSummary(), slim.health.textSummary());
}

TEST(FleetHealth, FoldedFinalsMatchKeptPerRackResults)
{
    const HealthRun &full = fullRun();
    ASSERT_EQ(full.health.rackCount(), full.result.racks.size());
    for (std::size_t r = 0; r < full.result.racks.size(); ++r) {
        const SimResult &rr = full.result.racks[r];
        const FleetHealthAggregator::RackHealth &h =
            full.health.rack(r);
        EXPECT_TRUE(h.finalized);
        EXPECT_EQ(h.name, "rack" + std::to_string(r));
        EXPECT_EQ(h.unservedWh, rr.ledger.unservedWh);
        EXPECT_EQ(h.servedWh, rr.ledger.servedWh());
        EXPECT_EQ(h.downtimeSeconds, rr.downtimeSeconds);
        EXPECT_EQ(h.energyEfficiency, rr.energyEfficiency);
        EXPECT_EQ(h.crashEvents, rr.serverCrashEvents);
        EXPECT_EQ(h.gracefulShedEvents, rr.gracefulShedEvents);
        EXPECT_EQ(h.faultEvents, rr.faultEventsApplied);
        EXPECT_EQ(h.faultsByKind, rr.faultEventsByKind);
        EXPECT_EQ(h.peakDrawW, rr.peakUtilityDrawW);
    }
}

TEST(FleetHealth, FleetFaultRollupSumsRackCounts)
{
    const HealthRun &full = fullRun();
    const std::vector<unsigned long> &fleet =
        full.health.fleetFaultsByKind();
    ASSERT_EQ(fleet.size(), fault::kFaultKindCount);
    unsigned long total = 0;
    for (std::size_t k = 0; k < fleet.size(); ++k) {
        unsigned long sum = 0;
        for (const SimResult &rr : full.result.racks) {
            if (k < rr.faultEventsByKind.size())
                sum += rr.faultEventsByKind[k];
        }
        EXPECT_EQ(fleet[k], sum) << "fault kind " << k;
        total += fleet[k];
    }
    // 6 h of fault injection across three racks must hit something,
    // or every equality above is vacuous.
    EXPECT_GT(total, 0ul);
}

TEST(FleetHealth, MacroEngagementMatchesTickCounts)
{
    const HealthRun &full = fullRun();
    unsigned long advanced =
        full.result.denseTicks + full.result.macroSpanTicks;
    ASSERT_GT(advanced, 0ul);
    EXPECT_EQ(full.health.macroEngagement(),
              static_cast<double>(full.result.macroSpanTicks) /
                  static_cast<double>(advanced));
    EXPECT_GE(full.health.macroEngagement(), 0.0);
    EXPECT_LE(full.health.macroEngagement(), 1.0);
}

TEST(FleetHealth, JsonCarriesEngineTotalsExactly)
{
    const HealthRun &full = fullRun();
    std::string json = full.health.toJson();
    // %.17g exact: the JSON totals are the FleetResult values.
    EXPECT_NE(json.find("\"total_unserved_wh\": " +
                        formatRoundTrip(
                            full.result.totalUnservedWh)),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"facility_peak_draw_w\": " +
                        formatRoundTrip(
                            full.result.facilityPeakDrawW)),
              std::string::npos);
    EXPECT_NE(json.find("\"mean_efficiency\": " +
                        formatRoundTrip(full.result.meanEfficiency)),
              std::string::npos);
    EXPECT_NE(json.find("\"macro_span_ticks\": " +
                        std::to_string(full.result.macroSpanTicks)),
              std::string::npos);
    EXPECT_NE(json.find("\"finalized\": true"), std::string::npos);
}

TEST(FleetHealth, TextSummaryListsRacksAndSchemes)
{
    const HealthRun &full = fullRun();
    std::string text = full.health.textSummary();
    EXPECT_NE(text.find("fleet: 3 racks"), std::string::npos)
        << text;
    EXPECT_NE(text.find("macro-span engagement"),
              std::string::npos);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_NE(text.find("rack" + std::to_string(r)),
                  std::string::npos);
    }
    // Scheme column carries the scheme's own name.
    EXPECT_NE(text.find(full.health.rack(0).scheme),
              std::string::npos);
    EXPECT_FALSE(full.health.rack(0).scheme.empty());
}

struct WatchProbe
{
    unsigned long samples = 0;
    std::size_t racksSeen = 0;
    bool summaryNonEmpty = true;
};

void
countWatchSample(const FleetHealthAggregator &health, void *user)
{
    WatchProbe *probe = static_cast<WatchProbe *>(user);
    ++probe->samples;
    probe->racksSeen = health.rackCount();
    probe->summaryNonEmpty &= !health.textSummary().empty();
}

TEST(FleetHealth, LiveSamplingFiresWatchCallback)
{
    CalmRig rig(/*faults=*/false, /*hours=*/2.0);
    FleetHealthAggregator health;
    WatchProbe probe;
    FleetOptions options{BudgetPolicy::Static, FleetMode::Event,
                         false};
    options.health = &health;
    options.healthSampleSeconds = kSampleSeconds;
    options.onHealthSample = countWatchSample;
    options.onHealthSampleUser = &probe;
    FleetSimulator(rig.cfg, kBudget, options).run(rig.specs);

    // 2 h at a 600 s cadence: at least the dense-path floor of
    // samples, and never more than one per simulated second.
    EXPECT_GE(probe.samples, 3ul);
    EXPECT_LE(probe.samples, 7200ul);
    EXPECT_EQ(probe.racksSeen, 3u);
    EXPECT_TRUE(probe.summaryNonEmpty);
}

TEST(FleetHealth, BeginRunResetsPriorState)
{
    FleetHealthAggregator health = fullRun().health;
    ASSERT_EQ(health.rackCount(), 3u);
    health.beginRun({"fresh"}, {"HEB-D"}, 40);
    EXPECT_EQ(health.rackCount(), 1u);
    EXPECT_FALSE(health.rack(0).finalized);
    EXPECT_EQ(health.rack(0).name, "fresh");
    std::string json = health.toJson();
    EXPECT_NE(json.find("\"finalized\": false"),
              std::string::npos);
    EXPECT_EQ(json.find("\"total_unserved_wh\""),
              std::string::npos)
        << "engine totals must not survive beginRun";
}

TEST(FleetHealth, InvalidInputsFatal)
{
    FleetHealthAggregator health;
    EXPECT_EXIT(health.beginRun({"a", "b"}, {"s"}, 10),
                testing::ExitedWithCode(1), "differ");
    health.beginRun({"a"}, {"s"}, 10);
    EXPECT_EXIT(health.rack(1), testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace heb

/** @file Demand-charge management (peak-shaving soft cap, §7.6). */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "tco/peak_shaving.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
cappedConfig(double target_w)
{
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    cfg.budgetW = 400.0; // generous physical feed
    cfg.peakShavingTargetW = target_w;
    return cfg;
}

TEST(DemandCharge, SoftCapLowersBilledPeak)
{
    SimResult uncapped = runOne(cappedConfig(0.0), "WC",
                                SchemeKind::HebD);
    SimResult capped = runOne(cappedConfig(265.0), "WC",
                              SchemeKind::HebD);
    EXPECT_LT(capped.peakUtilityDrawW,
              uncapped.peakUtilityDrawW - 5.0);
    // And without sacrificing availability.
    EXPECT_LE(capped.downtimeSeconds, uncapped.downtimeSeconds);
}

TEST(DemandCharge, BuffersCarryTheShavedEnergy)
{
    SimResult capped = runOne(cappedConfig(265.0), "WC",
                              SchemeKind::HebD);
    EXPECT_GT(capped.ledger.bufferToLoadWh(), 10.0);
}

TEST(DemandCharge, EconomicCapNeverShedsServers)
{
    // A hopeless target (below idle floor) must be ignored in favor
    // of the physical budget, not answered with shutdowns.
    SimResult r = runOne(cappedConfig(100.0), "WC",
                         SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r.downtimeSeconds, 0.0);
    // Draw exceeds the hopeless target (backfilled) but stays under
    // the physical budget.
    EXPECT_GT(r.peakUtilityDrawW, 100.0);
    EXPECT_LE(r.peakUtilityDrawW, 400.0 + 1e-6);
}

TEST(DemandCharge, RechargeRespectsSoftCap)
{
    // Charging must not itself set a new billed peak: total draw
    // stays at or below the target whenever the buffers suffice.
    SimResult r = runOne(cappedConfig(260.0), "WC",
                         SchemeKind::HebD);
    double over_target = r.supplyW.fractionWhere(
        [](double) { return false; }); // placeholder, see below
    (void)over_target;
    // Count ticks where draw exceeded the target by checking the
    // recorded peak: with WC's modest peaks the 260 W target is
    // coverable, so the billed peak sits at the target.
    EXPECT_LE(r.peakUtilityDrawW, 262.0);
}

TEST(DemandCharge, SavingsFeedTheTcoModel)
{
    SimResult uncapped = runOne(cappedConfig(0.0), "WC",
                                SchemeKind::HebD);
    SimResult capped = runOne(cappedConfig(265.0), "WC",
                              SchemeKind::HebD);
    double shaved_kw =
        (uncapped.peakUtilityDrawW - capped.peakUtilityDrawW) /
        1000.0;
    ASSERT_GT(shaved_kw, 0.0);
    // Annualized revenue at the paper's 12 $/kW-month tariff.
    double annual = shaved_kw * 12.0 * 12.0;
    EXPECT_GT(annual, 0.0);
}

} // namespace
} // namespace heb

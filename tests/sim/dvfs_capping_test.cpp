/** @file DVFS performance-scaling knob (paper §1 alternative). */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
shortConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0;
    return cfg;
}

TEST(DvfsCapping, OffByDefaultNoDegradation)
{
    SimResult r = runOne(shortConfig(), "TS", SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r.perfDegradationServerSeconds, 0.0);
}

TEST(DvfsCapping, ThrottlingAccumulatesOnLargePeaks)
{
    SimConfig cfg = shortConfig();
    cfg.dvfsCapping = true;
    SimResult r = runOne(cfg, "TS", SchemeKind::HebD);
    EXPECT_GT(r.perfDegradationServerSeconds, 0.0);
}

TEST(DvfsCapping, SmallPeakWorkloadsNeverThrottle)
{
    // Small-peak group already runs at the low level; capping can't
    // go lower.
    SimConfig cfg = shortConfig();
    cfg.dvfsCapping = true;
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r.perfDegradationServerSeconds, 0.0);
}

TEST(DvfsCapping, ReducesBufferEnergyNeeded)
{
    SimConfig cfg = shortConfig();
    SimResult no_cap = runOne(cfg, "TS", SchemeKind::HebD);
    cfg.dvfsCapping = true;
    SimResult capped = runOne(cfg, "TS", SchemeKind::HebD);
    EXPECT_LT(capped.ledger.bufferToLoadWh(),
              no_cap.ledger.bufferToLoadWh());
}

TEST(DvfsCapping, CapsWithoutBuffersStillServes)
{
    // Throttled demand fits under the budget, so even a token
    // buffer bank yields little-to-no downtime on TS.
    SimConfig cfg = shortConfig();
    cfg.dvfsCapping = true;
    cfg.scEnergyWh = 0.5;
    cfg.baEnergyWh = 1.0;
    SimResult r = runOne(cfg, "TS", SchemeKind::HebD);
    // Throttled TS peak: 6 x (30 + 40*0.97*0.522) = ~300 W > 260 W
    // budget, so some shedding remains -- but far less than the
    // unthrottled 400 W peak would cause.
    SimConfig raw = shortConfig();
    raw.scEnergyWh = 0.5;
    raw.baEnergyWh = 1.0;
    SimResult r_raw = runOne(raw, "TS", SchemeKind::HebD);
    EXPECT_LT(r.downtimeSeconds, r_raw.downtimeSeconds);
}

} // namespace
} // namespace heb

/**
 * @file
 * Failure injection: outages, dead strings, hostile inputs.
 *
 * The architecture's whole point is riding through supply anomalies;
 * these tests inject them and check the invariants hold — energy
 * stays accounted, nothing goes negative, and the hybrid buffer
 * actually carries the load when the feed disappears.
 */

#include <gtest/gtest.h>

#include "esd/bank_builder.h"
#include "power/utility_grid.h"
#include "sim/experiment.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0;
    return cfg;
}

TEST(OutageInjection, GridReportsOutageWindows)
{
    UtilityGrid g(260.0);
    g.addOutage(100.0, 50.0);
    EXPECT_FALSE(g.inOutage(99.0));
    EXPECT_TRUE(g.inOutage(100.0));
    EXPECT_TRUE(g.inOutage(149.9));
    EXPECT_FALSE(g.inOutage(150.0));
    EXPECT_DOUBLE_EQ(g.availablePowerW(120.0), 0.0);
    EXPECT_DOUBLE_EQ(g.availablePowerW(200.0), 260.0);
    EXPECT_EXIT(g.addOutage(0.0, 0.0), testing::ExitedWithCode(1),
                "duration");
}

TEST(OutageInjection, HybridRidesThroughShortOutage)
{
    // A 90 s outage against a quiet workload: the bank covers the
    // whole cluster, no server sheds.
    SimConfig cfg = baseConfig();
    cfg.outages = {{3600.0, 90.0}};
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r.downtimeSeconds, 0.0);
    // The outage energy came from the buffers.
    EXPECT_GT(r.ledger.bufferToLoadWh(),
              200.0 * 90.0 / 3600.0 * 0.8);
}

TEST(OutageInjection, LongOutageForcesShedding)
{
    // 96 Wh of buffers cannot carry ~250 W for a full hour.
    SimConfig cfg = baseConfig();
    cfg.outages = {{3600.0, 3600.0}};
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    EXPECT_GT(r.downtimeSeconds, 0.0);
    EXPECT_GT(r.ledger.unservedWh, 0.0);
}

TEST(OutageInjection, HybridOutlastsBatteryOnlyInOutage)
{
    // During an outage the whole load lands on the buffers at once —
    // a large power draw the rate-limited homogeneous battery cannot
    // deliver, while the hybrid's SC branch can.
    SimConfig cfg = baseConfig();
    cfg.outages = {{3600.0, 600.0}};
    SimResult heb = runOne(cfg, "WC", SchemeKind::HebD);
    SimResult ba = runOne(cfg, "WC", SchemeKind::BaOnly);
    EXPECT_LT(heb.ledger.unservedWh, ba.ledger.unservedWh);
    EXPECT_LE(heb.downtimeSeconds, ba.downtimeSeconds);
}

TEST(OutageInjection, RecoveryAfterOutage)
{
    SimConfig cfg = baseConfig();
    cfg.outages = {{3600.0, 1800.0}};
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    // Near the end of the run everything is back online: the last
    // 30 minutes record no unserved power.
    std::size_t n = r.unservedW.size();
    double tail_unserved = 0.0;
    for (std::size_t i = n - 1800; i < n; ++i)
        tail_unserved += r.unservedW[i];
    EXPECT_NEAR(tail_unserved, 0.0, 1.0);
    EXPECT_GT(r.serverOnOffCycles, 0u);
}

TEST(DeadStringInjection, PoolSurvivesDeadMember)
{
    // One battery string at zero charge and DoD floor: the pool
    // keeps serving from the healthy string.
    auto bank = makeBatteryBank(67.2, 0.8, 2);
    bank->device(0).setSoc(0.2); // dead at the DoD floor
    double got = bank->discharge(30.0, 60.0);
    EXPECT_GT(got, 29.0);
    EXPECT_FALSE(bank->depleted(1.0));
}

TEST(DeadStringInjection, HalfBankHalvesEnduranceRoughly)
{
    auto full = makeBatteryBank(67.2, 0.8, 2);
    auto degraded = makeBatteryBank(67.2, 0.8, 2);
    degraded->device(0).setSoc(0.2);

    // Endurance = time the pool can hold the *full* request; once it
    // degrades to a recovery trickle the service is effectively lost.
    // Endurance = time the pool can hold the *full* request; once it
    // degrades to a recovery trickle the service is effectively
    // lost. 30 W stays inside a single string's 1 C rating so the
    // surviving string can serve alone.
    auto endurance = [](EsdPool &pool) {
        double t = 0.0;
        while (t < 36000.0) {
            if (pool.discharge(30.0, 10.0) < 27.0)
                break;
            t += 10.0;
        }
        return t;
    };
    double t_full = endurance(*full);
    double t_degraded = endurance(*degraded);
    EXPECT_LT(t_degraded, 0.7 * t_full);
    EXPECT_GT(t_degraded, 0.25 * t_full);
}

TEST(HostileInputs, ZeroUtilizationWorkloadIsHarmless)
{
    // A workload that never loads the servers: no mismatch, no
    // buffer activity, perfect uptime.
    ProfileParams p;
    p.name = "idle";
    p.highUtil = 0.0;
    p.lowUtil = 0.0;
    SyntheticWorkload idle(p, 1);
    SimConfig cfg = baseConfig();
    Simulator sim(cfg);
    auto scheme = makeScheme(SchemeKind::HebD);
    SimResult r = sim.run(idle, *scheme);
    EXPECT_DOUBLE_EQ(r.downtimeSeconds, 0.0);
    EXPECT_NEAR(r.ledger.bufferToLoadWh(), 0.0, 0.1);
}

TEST(HostileInputs, SaturatedWorkloadDegradesGracefully)
{
    ProfileParams p;
    p.name = "flatout";
    p.highUtil = 1.0;
    p.lowUtil = 1.0;
    p.peakClass = PeakClass::Large;
    SyntheticWorkload flat(p, 1);
    SimConfig cfg = baseConfig();
    Simulator sim(cfg);
    auto scheme = makeScheme(SchemeKind::HebD);
    SimResult r = sim.run(flat, *scheme);
    // 420 W sustained against a 260 W budget: shedding is the only
    // option, but the ledger must still balance.
    EXPECT_GT(r.downtimeSeconds, 0.0);
    double demand_wh = r.demandW.integralWattHours();
    EXPECT_NEAR(r.ledger.servedWh() + r.ledger.unservedWh, demand_wh,
                demand_wh * 0.01);
}

} // namespace
} // namespace heb

/** @file RackDomain unit behaviour (the fleet building block). */

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "sim/rack_domain.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

struct DomainRig
{
    DomainRig()
        : workload(makeWorkload("WC")),
          scheme(makeScheme(SchemeKind::HebD))
    {
        cfg.durationSeconds = 3600.0;
    }

    SimConfig cfg;
    std::unique_ptr<SyntheticWorkload> workload;
    std::unique_ptr<ManagementScheme> scheme;
};

TEST(RackDomain, DemandMatchesClusterEnvelope)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    double demand = domain.computeDemand(0.0);
    // Six servers: between idle floor and nameplate.
    EXPECT_GE(demand, 180.0);
    EXPECT_LE(demand, 420.0);
}

TEST(RackDomain, TickBalancesEnergy)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    for (double t = 0.0; t < 1200.0; t += 1.0) {
        double demand = domain.computeDemand(t);
        RackDomain::TickOutcome out = domain.tick(t, 260.0);
        EXPECT_DOUBLE_EQ(out.demandW, demand);
        EXPECT_GE(out.sourceDrawW, 0.0);
        EXPECT_LE(out.sourceDrawW, 260.0 + 1e-9);
        EXPECT_GE(out.unservedW, 0.0);
    }
}

TEST(RackDomain, ZeroSupplyRunsFromBuffers)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    domain.computeDemand(0.0);
    RackDomain::TickOutcome out = domain.tick(0.0, 0.0);
    EXPECT_DOUBLE_EQ(out.sourceDrawW, 0.0);
    // Buffers carried (most of) the cluster.
    EXPECT_LT(out.unservedW, out.demandW * 0.5);
    EXPECT_LT(domain.scUsableWh() + domain.baUsableWh(),
              28.8 + 53.8);
}

TEST(RackDomain, OfflineServersTracked)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    EXPECT_EQ(domain.offlineServers(), 0u);
    // Starve it until servers shed.
    for (double t = 0.0; t < 3000.0 && domain.offlineServers() == 0;
         t += 1.0) {
        domain.computeDemand(t);
        domain.tick(t, 0.0);
    }
    EXPECT_GT(domain.offlineServers(), 0u);
}

TEST(RackDomain, FinalizeFillsResult)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    for (double t = 0.0; t < 1800.0; t += 1.0) {
        domain.computeDemand(t);
        domain.tick(t, 260.0);
    }
    SimResult r;
    domain.finalize(r);
    EXPECT_EQ(r.demandW.size(), 1800u);
    EXPECT_GT(r.ledger.servedWh(), 0.0);
    EXPECT_GE(r.energyEfficiency, 0.0);
    EXPECT_LE(r.energyEfficiency, 1.0);
    EXPECT_GT(r.completedSlots, 1u);
}

TEST(RackDomain, ServerPeakPowerExposed)
{
    DomainRig rig;
    RackDomain domain(rig.cfg, *rig.workload, *rig.scheme, "r0");
    EXPECT_DOUBLE_EQ(domain.serverPeakPowerW(), 70.0);
}

} // namespace
} // namespace heb

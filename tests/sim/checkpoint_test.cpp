/**
 * @file
 * Checkpoint/restore tests: the kill-and-resume byte-identity
 * witness (single rack dense, fast-forward, solar; fleet event mode
 * across job counts) plus rejection of corrupt, truncated and
 * version-skewed files and newest-valid selection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/schemes.h"
#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "sim/simulator.h"
#include "sim/plan_cache.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

namespace fs = std::filesystem;

/** Fresh empty checkpoint directory under the gtest temp root. */
std::string
freshDir(const std::string &tag)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("heb_ckpt_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Rig shared by the witnesses: short, faulty, 1 s ticks. */
SimConfig
witnessConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    cfg.faultInjection = true;
    cfg.faultPlan.converterTripsPerDay = 24.0;
    cfg.faultPlan.weakCellsPerDay = 24.0;
    cfg.fastForward = false;
    return cfg;
}

/** One full run, fresh scheme, optional checkpointing knobs. */
std::string
runToJson(const SimConfig &cfg, const CheckpointOptions &ckpt = {})
{
    auto workload = SharedPlanCache::global().workload("TS", cfg.seed);
    auto scheme = makeScheme(SchemeKind::HebD);
    Simulator sim(cfg);
    return simResultToJson(sim.run(*workload, *scheme, ckpt));
}

/**
 * The headline witness: run uninterrupted; run again writing
 * checkpoints; simulate a mid-run kill by deleting the newest
 * checkpoint and resuming from the surviving earlier one. All three
 * final results must serialize byte-identically at %.17g.
 */
void
expectResumeByteIdentical(const SimConfig &cfg, const std::string &tag)
{
    const std::string reference = runToJson(cfg);

    CheckpointOptions every;
    every.everySimSeconds = cfg.durationSeconds / 3.0;
    every.dir = freshDir(tag);
    EXPECT_EQ(runToJson(cfg, every), reference)
        << "checkpointing perturbed the run";

    // "Kill" the run between the 1/3 and 2/3 snapshots: drop the
    // newest checkpoint so resume restarts from mid-run state.
    std::vector<std::uint64_t> ticks =
        listCheckpointTicks(every.dir, "sim");
    ASSERT_GE(ticks.size(), 2u);
    fs::remove(checkpointFilePath(every.dir, "sim", ticks.front()));

    CheckpointOptions resume;
    resume.dir = every.dir;
    resume.resume = true;
    EXPECT_EQ(runToJson(cfg, resume), reference)
        << "resumed run diverged from the uninterrupted one";
}

TEST(Checkpoint, ResumeByteIdenticalDenseWithFaults)
{
    expectResumeByteIdentical(witnessConfig(), "dense");
}

TEST(Checkpoint, ResumeByteIdenticalFastForwardWithFaults)
{
    SimConfig cfg = witnessConfig();
    cfg.fastForward = true;
    expectResumeByteIdentical(cfg, "ff");
}

TEST(Checkpoint, ResumeByteIdenticalSolar)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    cfg.solarPowered = true;
    expectResumeByteIdentical(cfg, "solar");
}

TEST(Checkpoint, ResumeByteIdenticalWithSensorNoiseAndDegradation)
{
    // Exercises the controller noise-RNG stream and the
    // degradation-ladder counters through the save/restore cycle.
    SimConfig cfg = witnessConfig();
    cfg.sensorNoiseSigma = 0.02;
    cfg.degradationPolicy = true;
    expectResumeByteIdentical(cfg, "noise");
}

/** Fleet witness: event engine, faults, resumed under other --jobs. */
TEST(Checkpoint, FleetResumeByteIdenticalAcrossJobCounts)
{
    SimConfig cfg = witnessConfig();
    cfg.fastForward = true;

    auto buildSpecs =
        [&](std::vector<std::unique_ptr<ManagementScheme>> &schemes,
            std::vector<std::shared_ptr<const SyntheticWorkload>> &wl) {
            schemes.clear();
            wl.clear();
            std::vector<RackSpec> specs;
            const char *profiles[] = {"TS", "WC", "MS"};
            for (std::size_t r = 0; r < 3; ++r) {
                wl.push_back(SharedPlanCache::global().workload(
                    profiles[r], cfg.seed + r));
                schemes.push_back(makeScheme(SchemeKind::HebD));
                specs.push_back(RackSpec{"rack" + std::to_string(r),
                                         wl[r].get(),
                                         schemes[r].get()});
            }
            return specs;
        };
    FleetOptions options{BudgetPolicy::Proportional, FleetMode::Event,
                         true};
    const double budget = 260.0 * 3;

    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<std::shared_ptr<const SyntheticWorkload>> workloads;

    ThreadPool::configureGlobal(4);
    FleetSimulator ref_fleet(cfg, budget, options);
    std::string reference = fleetResultToJson(
        ref_fleet.run(buildSpecs(schemes, workloads)));

    CheckpointOptions every;
    every.everySimSeconds = cfg.durationSeconds / 3.0;
    every.dir = freshDir("fleet");
    FleetSimulator ckpt_fleet(cfg, budget, options);
    EXPECT_EQ(fleetResultToJson(ckpt_fleet.run(
                  buildSpecs(schemes, workloads), every)),
              reference)
        << "checkpointing perturbed the fleet run";

    // Kill between snapshots, then resume on a different pool width.
    std::vector<std::uint64_t> ticks =
        listCheckpointTicks(every.dir, "fleet");
    ASSERT_GE(ticks.size(), 2u);
    fs::remove(checkpointFilePath(every.dir, "fleet", ticks.front()));

    ThreadPool::configureGlobal(2);
    CheckpointOptions resume;
    resume.dir = every.dir;
    resume.resume = true;
    FleetSimulator resumed_fleet(cfg, budget, options);
    EXPECT_EQ(fleetResultToJson(resumed_fleet.run(
                  buildSpecs(schemes, workloads), resume)),
              reference)
        << "fleet resume under a different job count diverged";
    ThreadPool::configureGlobal(0); // restore default sizing
}

/** A torn shard set (manifest intact, shard missing) falls back. */
TEST(Checkpoint, FleetMissingShardFallsBackToOlderCheckpoint)
{
    SimConfig cfg = witnessConfig();
    cfg.fastForward = true;

    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<std::shared_ptr<const SyntheticWorkload>> workloads;
    auto makeSpecs = [&]() {
        schemes.clear();
        workloads.clear();
        std::vector<RackSpec> specs;
        for (std::size_t r = 0; r < 2; ++r) {
            workloads.push_back(SharedPlanCache::global().workload(
                "TS", cfg.seed + r));
            schemes.push_back(makeScheme(SchemeKind::HebD));
            specs.push_back(RackSpec{"rack" + std::to_string(r),
                                     workloads[r].get(),
                                     schemes[r].get()});
        }
        return specs;
    };
    FleetOptions options{BudgetPolicy::Static, FleetMode::Event,
                         true};
    const double budget = 260.0 * 2;

    FleetSimulator ref_fleet(cfg, budget, options);
    std::string reference =
        fleetResultToJson(ref_fleet.run(makeSpecs()));

    CheckpointOptions every;
    every.everySimSeconds = cfg.durationSeconds / 3.0;
    every.dir = freshDir("fleet_torn");
    FleetSimulator ckpt_fleet(cfg, budget, options);
    ckpt_fleet.run(makeSpecs(), every);

    // Remove one shard of the newest set but keep its manifest: the
    // resume scan must reject the set and use the older one.
    std::vector<std::uint64_t> ticks =
        listCheckpointTicks(every.dir, "fleet");
    ASSERT_GE(ticks.size(), 2u);
    fs::remove(fs::path(every.dir) /
               ("fleet-" + std::to_string(ticks.front()) +
                "-rack1.ckpt"));

    CheckpointOptions resume;
    resume.dir = every.dir;
    resume.resume = true;
    FleetSimulator resumed_fleet(cfg, budget, options);
    EXPECT_EQ(fleetResultToJson(resumed_fleet.run(makeSpecs(),
                                                  resume)),
              reference);
}

// ---- File-level rejection tests --------------------------------

/** Write a minimal valid checkpoint and return its path. */
std::string
writeSmallCheckpoint(const std::string &dir, std::uint64_t tick)
{
    CheckpointWriter w;
    w.putDouble("meta.duration_s", 100.0);
    w.putU64("sim.tick", tick);
    w.putDoubles("series", {1.0, 2.5, -3.75});
    std::string path = checkpointFilePath(dir, "sim", tick);
    EXPECT_TRUE(writeCheckpointFile(path, w.payload()));
    return path;
}

TEST(Checkpoint, RoundTripsPayloadExactly)
{
    std::string dir = freshDir("roundtrip");
    CheckpointWriter w;
    w.putDouble("d.pi", 3.141592653589793);
    w.putDouble("d.tiny", 5e-324);
    w.putDouble("d.inf", std::numeric_limits<double>::infinity());
    w.putDouble("d.max", std::numeric_limits<double>::max());
    w.putU64("u.big", 18446744073709551615ull);
    w.putBool("b.on", true);
    w.putString("s.name", "rack0");
    w.putDoubles("v.series", {0.1, -0.2, 1e300});
    std::string path = checkpointFilePath(dir, "sim", 7);
    ASSERT_TRUE(writeCheckpointFile(path, w.payload()));

    std::string payload, error;
    ASSERT_TRUE(readCheckpointFile(path, payload, error)) << error;
    CheckpointReader r;
    ASSERT_TRUE(r.parse(payload, error)) << error;
    EXPECT_EQ(r.getDouble("d.pi"), 3.141592653589793);
    EXPECT_EQ(r.getDouble("d.tiny"), 5e-324);
    EXPECT_EQ(r.getDouble("d.inf"),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.getDouble("d.max"),
              std::numeric_limits<double>::max());
    EXPECT_EQ(r.getU64("u.big"), 18446744073709551615ull);
    EXPECT_TRUE(r.getBool("b.on"));
    EXPECT_EQ(r.getString("s.name"), "rack0");
    EXPECT_EQ(r.getDoubles("v.series"),
              (std::vector<double>{0.1, -0.2, 1e300}));
    EXPECT_FALSE(r.has("missing.key"));
}

TEST(Checkpoint, CorruptPayloadByteRejected)
{
    std::string dir = freshDir("corrupt");
    std::string path = writeSmallCheckpoint(dir, 10);

    // Flip one payload byte; the header checksum must catch it.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    auto size = static_cast<long>(f.tellg());
    f.seekp(size - 2);
    f.put('#');
    f.close();

    std::string payload, error;
    EXPECT_FALSE(readCheckpointFile(path, payload, error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(Checkpoint, TruncatedFileRejected)
{
    std::string dir = freshDir("truncated");
    std::string path = writeSmallCheckpoint(dir, 11);
    fs::resize_file(path, fs::file_size(path) - 7);

    std::string payload, error;
    EXPECT_FALSE(readCheckpointFile(path, payload, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(Checkpoint, VersionSkewRejected)
{
    std::string dir = freshDir("skew");
    std::string path = writeSmallCheckpoint(dir, 12);

    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    // Header: "HEBCKPT <version> ..." — bump the version field.
    std::size_t sp = content.find(' ');
    ASSERT_NE(sp, std::string::npos);
    content.replace(sp + 1, 1, "999");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    out.close();

    std::string payload, error;
    EXPECT_FALSE(readCheckpointFile(path, payload, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Checkpoint, BadMagicRejected)
{
    std::string dir = freshDir("magic");
    std::string path = checkpointFilePath(dir, "sim", 13);
    std::ofstream out(path, std::ios::binary);
    out << "NOTCKPT 1 0 0\n";
    out.close();

    std::string payload, error;
    EXPECT_FALSE(readCheckpointFile(path, payload, error));
}

TEST(Checkpoint, NewestValidSelectedCorruptNewestSkipped)
{
    std::string dir = freshDir("newest");
    writeSmallCheckpoint(dir, 100);
    writeSmallCheckpoint(dir, 200);
    std::string newest = writeSmallCheckpoint(dir, 300);

    // Corrupt the newest: selection must fall back to tick 200.
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0, std::ios::end);
    auto size = static_cast<long>(f.tellg());
    f.seekp(size - 2);
    f.put('#');
    f.close();

    std::string payload, path;
    std::uint64_t tick = 0;
    ASSERT_TRUE(
        newestValidCheckpoint(dir, "sim", payload, path, tick));
    EXPECT_EQ(tick, 200u);
    EXPECT_EQ(path, checkpointFilePath(dir, "sim", 200));
}

TEST(Checkpoint, AbortedEmergencyFilesNeverAutoSelected)
{
    std::string dir = freshDir("aborted");
    writeSmallCheckpoint(dir, 50);
    // An emergency file with a higher embedded tick must not win.
    CheckpointWriter w;
    w.putU64("sim.tick", 999);
    ASSERT_TRUE(writeCheckpointFile(
        dir + "/sim-emergency" + kAbortedCheckpointSuffix,
        w.payload()));

    std::string payload, path;
    std::uint64_t tick = 0;
    ASSERT_TRUE(
        newestValidCheckpoint(dir, "sim", payload, path, tick));
    EXPECT_EQ(tick, 50u);
}

TEST(Checkpoint, EmptyDirectoryHasNoCheckpoint)
{
    std::string dir = freshDir("empty");
    std::string payload, path;
    std::uint64_t tick = 0;
    EXPECT_FALSE(
        newestValidCheckpoint(dir, "sim", payload, path, tick));
    EXPECT_TRUE(listCheckpointTicks(dir, "sim").empty());
}

TEST(Checkpoint, ResumeFromMismatchedConfigIsFatal)
{
    SimConfig cfg = witnessConfig();
    CheckpointOptions every;
    every.everySimSeconds = cfg.durationSeconds / 3.0;
    every.dir = freshDir("guard");
    runToJson(cfg, every);

    SimConfig other = cfg;
    other.seed = cfg.seed + 1;
    CheckpointOptions resume;
    resume.dir = every.dir;
    resume.resume = true;
    EXPECT_EXIT(runToJson(other, resume),
                ::testing::ExitedWithCode(1),
                "written under a different seed");
}

TEST(Checkpoint, OptionsValidateRejectsBadKnobs)
{
    CheckpointOptions nan_period;
    nan_period.everySimSeconds =
        std::numeric_limits<double>::quiet_NaN();
    nan_period.dir = "x";
    EXPECT_EXIT(nan_period.validate(),
                ::testing::ExitedWithCode(1), "non-negative");

    CheckpointOptions negative;
    negative.everySimSeconds = -5.0;
    negative.dir = "x";
    EXPECT_EXIT(negative.validate(), ::testing::ExitedWithCode(1),
                "non-negative");

    CheckpointOptions no_dir;
    no_dir.everySimSeconds = 60.0;
    EXPECT_EXIT(no_dir.validate(), ::testing::ExitedWithCode(1),
                "checkpoint-dir");
}

TEST(SimConfigValidate, RejectsMalformedFields)
{
    SimConfig zero_servers;
    zero_servers.numServers = 0;
    EXPECT_EXIT(zero_servers.validate(),
                ::testing::ExitedWithCode(1), "numServers");

    SimConfig nan_duration;
    nan_duration.durationSeconds =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT(nan_duration.validate(),
                ::testing::ExitedWithCode(1), "durationSeconds");

    SimConfig bad_budget;
    bad_budget.budgetW = -10.0;
    EXPECT_EXIT(bad_budget.validate(),
                ::testing::ExitedWithCode(1), "budgetW");

    SimConfig bad_dod;
    bad_dod.baDod = 1.5;
    EXPECT_EXIT(bad_dod.validate(), ::testing::ExitedWithCode(1),
                "baDod");

    SimConfig ok;
    ok.validate(); // must not exit
    SUCCEED();
}

} // namespace
} // namespace heb

/** @file Controller robustness to imperfect buffer telemetry. */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
noisyConfig(double sigma)
{
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    cfg.sensorNoiseSigma = sigma;
    return cfg;
}

TEST(SensorNoise, CleanSensorsByDefault)
{
    SimConfig a = noisyConfig(0.0);
    SimResult r1 = runOne(a, "TS", SchemeKind::HebD);
    SimResult r2 = runOne(a, "TS", SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r1.downtimeSeconds, r2.downtimeSeconds);
}

TEST(SensorNoise, ModerateNoiseDegradesGracefully)
{
    HebSchemeConfig scheme_cfg;
    SimConfig clean = noisyConfig(0.0);
    PowerAllocationTable pat = buildSeededPat(clean, scheme_cfg);
    SimResult base =
        runOne(clean, "TS", SchemeKind::HebD, scheme_cfg, &pat);

    SimConfig noisy = noisyConfig(0.05); // 5 % SoC estimation error
    SimResult r =
        runOne(noisy, "TS", SchemeKind::HebD, scheme_cfg, &pat);

    // The feasibility clamps and spillover keep the system serving;
    // 5 % telemetry error must not blow up downtime.
    EXPECT_LE(r.downtimeSeconds, base.downtimeSeconds + 1200.0);
    EXPECT_GT(r.energyEfficiency, base.energyEfficiency - 0.05);
}

TEST(SensorNoise, NoiseIsDeterministicPerSeed)
{
    SimConfig cfg = noisyConfig(0.1);
    SimResult r1 = runOne(cfg, "WC", SchemeKind::HebD);
    SimResult r2 = runOne(cfg, "WC", SchemeKind::HebD);
    EXPECT_DOUBLE_EQ(r1.downtimeSeconds, r2.downtimeSeconds);
    EXPECT_DOUBLE_EQ(r1.energyEfficiency, r2.energyEfficiency);
}

TEST(SensorNoise, HeavyNoiseStillServesMostLoad)
{
    SimConfig cfg = noisyConfig(0.25);
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    double demand_wh = r.demandW.integralWattHours();
    EXPECT_GT(r.ledger.servedWh(), 0.9 * demand_wh);
}

} // namespace
} // namespace heb

/** @file Experiment orchestration (Fig. 12/13/14 sweeps). */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    return cfg;
}

TEST(Experiment, SeededPatNonEmpty)
{
    HebSchemeConfig scheme_cfg;
    PowerAllocationTable pat =
        buildSeededPat(tinyConfig(), scheme_cfg);
    EXPECT_GT(pat.size(), 10u);
    for (const auto &e : pat.entries()) {
        EXPECT_GE(e.rLambda, 0.0);
        EXPECT_LE(e.rLambda, 1.0);
    }
}

TEST(Experiment, RunOneProducesResult)
{
    SimResult r = runOne(tinyConfig(), "WC", SchemeKind::ScFirst);
    EXPECT_EQ(r.workloadName, "WC");
    EXPECT_EQ(r.schemeName, "SCFirst");
}

TEST(Experiment, CompareSchemesShapes)
{
    auto rows = compareSchemes(
        tinyConfig(), {"WC", "TS"},
        {SchemeKind::BaOnly, SchemeKind::HebD});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].scheme, "BaOnly");
    EXPECT_EQ(rows[1].scheme, "HEB-D");
    EXPECT_EQ(rows[0].perWorkload.size(), 2u);
    // Small/large efficiency splits populated (WC small, TS large).
    EXPECT_GT(rows[0].energyEfficiencySmall, 0.0);
    EXPECT_GT(rows[0].energyEfficiencyLarge, 0.0);
}

TEST(Experiment, HybridBeatsHomogeneousOnEfficiency)
{
    auto rows = compareSchemes(
        tinyConfig(), {"WC", "PR"},
        {SchemeKind::BaOnly, SchemeKind::HebD});
    EXPECT_GT(rows[1].energyEfficiency, rows[0].energyEfficiency);
}

TEST(Experiment, RatioSweepKeepsTotalCapacity)
{
    SimConfig base = tinyConfig();
    auto points = ratioSweep(base, {{3.0, 7.0}, {5.0, 5.0}});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].scParts, 3.0);
    EXPECT_EQ(points[0].summary.scheme, "HEB-D");
}

TEST(Experiment, CapacitySweepRuns)
{
    SimConfig base = tinyConfig();
    auto points = capacitySweep(base, {0.5, 0.8});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].dod, 0.5);
    EXPECT_DOUBLE_EQ(points[1].dod, 0.8);
}

TEST(Experiment, ParallelSweepIsBitIdenticalToSerial)
{
    SimConfig cfg = tinyConfig();
    std::vector<std::string> workloads = {"WC", "TS", "PR"};
    std::vector<SchemeKind> schemes = {
        SchemeKind::BaOnly, SchemeKind::ScFirst, SchemeKind::HebD};

    ThreadPool::configureGlobal(1);
    auto serial = compareSchemes(cfg, workloads, schemes);
    ThreadPool::configureGlobal(4);
    auto parallel = compareSchemes(cfg, workloads, schemes);
    ThreadPool::configureGlobal(0); // restore default sizing

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SchemeSummary &a = serial[i];
        const SchemeSummary &b = parallel[i];
        EXPECT_EQ(a.scheme, b.scheme);
        // Exact equality: the pool only reorders execution, never
        // the math or the aggregation order.
        EXPECT_EQ(a.energyEfficiency, b.energyEfficiency);
        EXPECT_EQ(a.energyEfficiencySmall, b.energyEfficiencySmall);
        EXPECT_EQ(a.energyEfficiencyLarge, b.energyEfficiencyLarge);
        EXPECT_EQ(a.downtimeSeconds, b.downtimeSeconds);
        EXPECT_EQ(a.batteryLifetimeYears, b.batteryLifetimeYears);
        EXPECT_EQ(a.reu, b.reu);
        ASSERT_EQ(a.perWorkload.size(), b.perWorkload.size());
        for (std::size_t w = 0; w < a.perWorkload.size(); ++w) {
            EXPECT_EQ(a.perWorkload[w].workloadName,
                      b.perWorkload[w].workloadName);
            EXPECT_EQ(a.perWorkload[w].energyEfficiency,
                      b.perWorkload[w].energyEfficiency);
            EXPECT_EQ(a.perWorkload[w].downtimeSeconds,
                      b.perWorkload[w].downtimeSeconds);
        }
    }
}

TEST(Experiment, EmptyInputsFatal)
{
    EXPECT_EXIT(compareSchemes(tinyConfig(), {}, {SchemeKind::HebD}),
                testing::ExitedWithCode(1), "need");
}

} // namespace
} // namespace heb

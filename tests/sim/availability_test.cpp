/** @file Monte-Carlo availability analysis under fault injection. */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/thread_pool.h"

namespace heb {
namespace {

SimConfig
faultyConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    cfg.faultSeed = 7;
    cfg.degradationPolicy = true;
    // Compress a stressed week into the two simulated hours so every
    // short scenario sees several fault kinds.
    cfg.faultPlan.converterTripsPerDay = 24.0;
    cfg.faultPlan.atsFailuresPerDay = 24.0;
    cfg.faultPlan.weakCellsPerDay = 12.0;
    cfg.faultPlan.sensorDropoutsPerDay = 12.0;
    cfg.faultPlan.sensorJitterEventsPerDay = 12.0;
    return cfg;
}

TEST(Availability, SweepShapesAndAggregates)
{
    auto rows = availabilitySweep(
        faultyConfig(), "TS",
        {SchemeKind::BaOnly, SchemeKind::HebD}, 4);
    ASSERT_EQ(rows.size(), 2u);
    for (const AvailabilitySummary &s : rows) {
        EXPECT_EQ(s.scenarios, 4u);
        ASSERT_EQ(s.ensWhPerScenario.size(), 4u);
        EXPECT_GE(s.availability, 0.0);
        EXPECT_LE(s.availability, 1.0);
        EXPECT_GE(s.maxEnsWh, s.p95EnsWh);
        EXPECT_GE(s.p95EnsWh, s.p50EnsWh);
        EXPECT_GE(s.maxEnsWh, s.meanEnsWh);
        // The dense plan must actually exercise the injector.
        EXPECT_GT(s.meanFaultsApplied, 0.0);
    }
    EXPECT_EQ(rows[0].scheme, "BaOnly");
    EXPECT_EQ(rows[1].scheme, "HEB-D");
}

TEST(Availability, HebServesMoreEnergyThanBatteryOnly)
{
    // The acceptance claim: under the same fault histories, the
    // hybrid scheme's SC branch covers the ATS gaps and converter
    // trips that rate-cap the battery-only bank, so HEB loses
    // strictly less energy.
    auto rows = availabilitySweep(
        faultyConfig(), "TS",
        {SchemeKind::BaOnly, SchemeKind::HebD}, 12);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_GT(rows[0].meanEnsWh, 0.0);
    EXPECT_LT(rows[1].meanEnsWh, rows[0].meanEnsWh);
    EXPECT_GE(rows[1].availability, rows[0].availability);
}

TEST(Availability, SameFaultHistoriesAcrossSchemes)
{
    auto rows = availabilitySweep(
        faultyConfig(), "TS",
        {SchemeKind::BaOnly, SchemeKind::ScFirst}, 3);
    ASSERT_EQ(rows.size(), 2u);
    // Scenario k draws the same fault plan for every scheme.
    EXPECT_EQ(rows[0].meanFaultsApplied, rows[1].meanFaultsApplied);
}

TEST(Availability, ParallelSweepIsByteIdenticalToSerial)
{
    SimConfig cfg = faultyConfig();
    std::vector<SchemeKind> schemes = {SchemeKind::BaOnly,
                                       SchemeKind::HebD};

    ThreadPool::configureGlobal(1);
    auto serial = availabilitySweep(cfg, "TS", schemes, 6);
    std::string serial_json = availabilityToJson(serial, cfg, "TS");
    ThreadPool::configureGlobal(4);
    auto parallel = availabilitySweep(cfg, "TS", schemes, 6);
    std::string parallel_json =
        availabilityToJson(parallel, cfg, "TS");
    ThreadPool::configureGlobal(0); // restore default sizing

    // Byte-for-byte: the rendered artifact, not just the numbers.
    EXPECT_EQ(serial_json, parallel_json);
}

TEST(Availability, JsonIsWellFormedAndNamesSchemes)
{
    SimConfig cfg = faultyConfig();
    auto rows = availabilitySweep(cfg, "WC",
                                  {SchemeKind::ScFirst}, 2);
    std::string json = availabilityToJson(rows, cfg, "WC");
    EXPECT_NE(json.find("\"experiment\": \"availability\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"WC\""), std::string::npos);
    EXPECT_NE(json.find("\"scheme\": \"SCFirst\""),
              std::string::npos);
    EXPECT_NE(json.find("\"availability\""), std::string::npos);
}

TEST(Availability, WriteJsonHandlesBadPathGracefully)
{
    SimConfig cfg = faultyConfig();
    std::vector<AvailabilitySummary> rows(1);
    rows[0].scheme = "BaOnly";
    EXPECT_FALSE(writeAvailabilityJson(
        "/nonexistent/heb_availability.json", rows, cfg, "TS"));
}

TEST(Availability, EmptyInputsFatal)
{
    EXPECT_EXIT(
        availabilitySweep(faultyConfig(), "TS", {}, 4),
        testing::ExitedWithCode(1), "need");
    EXPECT_EXIT(availabilitySweep(faultyConfig(), "TS",
                                  {SchemeKind::HebD}, 0),
                testing::ExitedWithCode(1), "need");
}

} // namespace
} // namespace heb

/** @file Full-system integration tests. */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
shortConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 4.0 * 3600.0; // keep unit runs fast
    return cfg;
}

TEST(Simulator, RunsAndFillsSeries)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("WC");
    auto scheme = makeScheme(SchemeKind::HebD);
    Simulator sim(cfg);
    SimResult r = sim.run(*workload, *scheme);

    EXPECT_EQ(r.schemeName, "HEB-D");
    EXPECT_EQ(r.workloadName, "WC");
    EXPECT_EQ(r.demandW.size(),
              static_cast<std::size_t>(cfg.durationSeconds));
    EXPECT_EQ(r.supplyW.size(), r.demandW.size());
    EXPECT_GT(r.completedSlots, 20u);
    EXPECT_EQ(r.scSoc.size(), r.rLambdaPerSlot.size());
}

TEST(Simulator, EnergyLedgerConsistent)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("TS");
    auto scheme = makeScheme(SchemeKind::HebD);
    SimResult r = Simulator(cfg).run(*workload, *scheme);

    const EnergyLedger &l = r.ledger;
    // Demand integral equals served + unserved (what the servers
    // wanted went somewhere).
    double demand_wh = r.demandW.integralWattHours();
    EXPECT_NEAR(l.servedWh() + l.unservedWh, demand_wh,
                demand_wh * 0.01);
    // All flows non-negative.
    EXPECT_GE(l.sourceToLoadWh, 0.0);
    EXPECT_GE(l.bufferToLoadWh(), 0.0);
    EXPECT_GE(l.unservedWh, 0.0);
    EXPECT_GE(l.chargeConversionLossWh, 0.0);
}

TEST(Simulator, BudgetNeverExceededByUtilityDraw)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("TS");
    auto scheme = makeScheme(SchemeKind::ScFirst);
    SimResult r = Simulator(cfg).run(*workload, *scheme);
    EXPECT_LE(r.peakUtilityDrawW, cfg.budgetW + 1e-6);
}

TEST(Simulator, BaOnlyGetsEqualTotalCapacity)
{
    // The homogeneous baseline must see the same total buffer energy
    // (paper §6 equal-capacity comparison).
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("WC");
    auto ba_only = makeScheme(SchemeKind::BaOnly);
    SimResult r = Simulator(cfg).run(*workload, *ba_only);
    // All buffered energy flows through the battery.
    EXPECT_DOUBLE_EQ(r.ledger.scToLoadWh, 0.0);
    EXPECT_DOUBLE_EQ(r.ledger.sourceToScWh, 0.0);
}

TEST(Simulator, HybridUsesScOnSmallPeaks)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("WC");
    auto heb = makeScheme(SchemeKind::HebD);
    SimResult r = Simulator(cfg).run(*workload, *heb);
    EXPECT_GT(r.ledger.scToLoadWh, r.ledger.batteryToLoadWh);
}

TEST(Simulator, EfficiencyMetricsInRange)
{
    SimConfig cfg = shortConfig();
    for (SchemeKind kind :
         {SchemeKind::BaOnly, SchemeKind::HebD}) {
        auto workload = makeWorkload("DA");
        auto scheme = makeScheme(kind);
        SimResult r = Simulator(cfg).run(*workload, *scheme);
        EXPECT_GE(r.energyEfficiency, 0.0);
        EXPECT_LE(r.energyEfficiency, 1.0);
        EXPECT_GE(r.effectiveEfficiency, 0.0);
        EXPECT_LE(r.effectiveEfficiency, 1.0);
    }
}

TEST(Simulator, SolarRunProducesReu)
{
    SimConfig cfg = shortConfig();
    cfg.solarPowered = true;
    cfg.durationSeconds = 24.0 * 3600.0;
    auto workload = makeWorkload("WS");
    auto scheme = makeScheme(SchemeKind::HebD);
    SimResult r = Simulator(cfg).run(*workload, *scheme);
    EXPECT_GT(r.reu, 0.0);
    EXPECT_LE(r.reu, 1.0);
}

TEST(Simulator, UtilityRunHasZeroReu)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("WS");
    auto scheme = makeScheme(SchemeKind::HebD);
    SimResult r = Simulator(cfg).run(*workload, *scheme);
    EXPECT_DOUBLE_EQ(r.reu, 0.0);
}

TEST(Simulator, LowBudgetForcesDowntime)
{
    SimConfig cfg = shortConfig();
    cfg.budgetW = 190.0; // under the idle floor of 180 + margin
    auto workload = makeWorkload("TS");
    auto scheme = makeScheme(SchemeKind::BaOnly);
    SimResult r = Simulator(cfg).run(*workload, *scheme);
    EXPECT_GT(r.downtimeSeconds, 0.0);
    EXPECT_GT(r.ledger.unservedWh, 0.0);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("TS");
    auto s1 = makeScheme(SchemeKind::HebD);
    auto s2 = makeScheme(SchemeKind::HebD);
    SimResult a = Simulator(cfg).run(*workload, *s1);
    SimResult b = Simulator(cfg).run(*workload, *s2);
    EXPECT_DOUBLE_EQ(a.energyEfficiency, b.energyEfficiency);
    EXPECT_DOUBLE_EQ(a.downtimeSeconds, b.downtimeSeconds);
    EXPECT_DOUBLE_EQ(a.batteryWeightedAh, b.batteryWeightedAh);
}

TEST(Simulator, BatteryLifetimeTracked)
{
    SimConfig cfg = shortConfig();
    auto workload = makeWorkload("TS");
    auto scheme = makeScheme(SchemeKind::BaFirst);
    SimResult r = Simulator(cfg).run(*workload, *scheme);
    EXPECT_GT(r.batteryWeightedAh, 0.0);
    EXPECT_GT(r.batteryLifetimeYears, 0.0);
    EXPECT_LE(r.batteryLifetimeYears, 8.0);
}

TEST(Simulator, InvalidConfigRejected)
{
    SimConfig cfg;
    cfg.numServers = 0;
    EXPECT_EXIT(Simulator{cfg}, testing::ExitedWithCode(1), "server");
    SimConfig cfg2;
    cfg2.durationSeconds = 10.0;
    EXPECT_EXIT(Simulator{cfg2}, testing::ExitedWithCode(1),
                "duration");
}

TEST(Simulator, CapacityRatioHelper)
{
    SimConfig cfg;
    double total = cfg.totalBufferWh();
    cfg.setCapacityRatio(5.0, 5.0);
    EXPECT_NEAR(cfg.scEnergyWh, total / 2.0, 1e-9);
    EXPECT_NEAR(cfg.totalBufferWh(), total, 1e-9);
}

} // namespace
} // namespace heb

/**
 * @file
 * Paper §5.3: the dynamic PAT compensates for buffer aging.
 *
 * "With the battery and SC aging, their ability of handling power
 * mismatching will decline. Therefore, the table needs to be
 * dynamically updated... The optimization algorithm can progressively
 * correct any inaccuracies caused by profiling or energy buffer
 * aging."
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

SimConfig
agedConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    cfg.batteryAging = true;
    return cfg;
}

TEST(AgingAdaptation, AgingConfigRuns)
{
    SimResult r = runOne(agedConfig(), "TS", SchemeKind::HebD);
    EXPECT_GT(r.ledger.servedWh(), 0.0);
}

TEST(AgingAdaptation, AgedBatteryRaisesScShare)
{
    // Pre-age the simulated fleet by shrinking the battery's rated
    // cycle life so fade accrues within a day, then compare the mean
    // large-peak r the dynamic scheme converges to against the
    // static scheme stuck with its profiled table.
    SimConfig cfg = agedConfig();
    HebSchemeConfig scheme_cfg;
    PowerAllocationTable pat = buildSeededPat(cfg, scheme_cfg);

    SimResult dynamic_r =
        runOne(cfg, "TS", SchemeKind::HebD, scheme_cfg, &pat);
    SimResult static_r =
        runOne(cfg, "TS", SchemeKind::HebS, scheme_cfg, &pat);

    // Both must serve the workload; the dynamic scheme must do at
    // least as well on downtime under aging.
    EXPECT_LE(dynamic_r.downtimeSeconds,
              static_r.downtimeSeconds + 600.0);
}

TEST(AgingAdaptation, FadeVisibleInLifetimeAccounting)
{
    // The same duty cycle wears an aging battery's effective
    // capability; usable energy at end of run reflects fade.
    SimConfig aging = agedConfig();
    SimConfig fresh = aging;
    fresh.batteryAging = false;
    SimResult r_aging = runOne(aging, "DFS", SchemeKind::BaFirst);
    SimResult r_fresh = runOne(fresh, "DFS", SchemeKind::BaFirst);
    // Aged bank does no better on downtime and pushes no more energy.
    EXPECT_GE(r_aging.downtimeSeconds,
              r_fresh.downtimeSeconds - 1e-9);
    EXPECT_LE(r_aging.ledger.batteryToLoadWh,
              r_fresh.ledger.batteryToLoadWh + 1.0);
}

TEST(SwitchWiring, RelaysActuateDuringMismatches)
{
    SimConfig cfg;
    cfg.durationSeconds = 6.0 * 3600.0;
    SimResult r = runOne(cfg, "TS", SchemeKind::HebD);
    // Every peak episode flips the relays utility->buffer and back.
    EXPECT_GT(r.switchActuations, 4u);
    EXPECT_GT(r.switchWearFraction, 0.0);
    EXPECT_LT(r.switchWearFraction, 0.01);
}

TEST(SwitchWiring, NoMismatchNoActuations)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    cfg.budgetW = 1000.0; // over-provisioned: never a mismatch
    SimResult r = runOne(cfg, "WC", SchemeKind::HebD);
    EXPECT_EQ(r.switchActuations, 0u);
}

} // namespace
} // namespace heb

/** @file Seeded-PAT cache hits, invalidation and sharing. */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/pat_cache.h"

namespace heb {
namespace {

SimConfig
cacheTestConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    return cfg;
}

TEST(SeededPatCache, SecondLookupOnSameLayoutHits)
{
    auto &cache = SeededPatCache::global();
    cache.clear();
    SimConfig cfg = cacheTestConfig();
    HebSchemeConfig scheme_cfg;

    auto first = cache.get(cfg, scheme_cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_GT(first->size(), 10u);

    auto second = cache.get(cfg, scheme_cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Shared immutable table, not a rebuilt copy.
    EXPECT_EQ(first.get(), second.get());
}

TEST(SeededPatCache, BankLayoutFieldsInvalidate)
{
    auto &cache = SeededPatCache::global();
    cache.clear();
    HebSchemeConfig scheme_cfg;
    SimConfig base = cacheTestConfig();
    cache.get(base, scheme_cfg);
    ASSERT_EQ(cache.misses(), 1u);

    // Each field the profiler reads must key a fresh seeding run.
    SimConfig sc_wh = base;
    sc_wh.scEnergyWh += 5.0;
    cache.get(sc_wh, scheme_cfg);
    EXPECT_EQ(cache.misses(), 2u);

    SimConfig ba_wh = base;
    ba_wh.baEnergyWh += 5.0;
    cache.get(ba_wh, scheme_cfg);
    EXPECT_EQ(cache.misses(), 3u);

    SimConfig dod = base;
    dod.scDod = 0.7;
    dod.baDod = 0.6;
    cache.get(dod, scheme_cfg);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(SeededPatCache, ProfilerBlindFieldsShareOneEntry)
{
    auto &cache = SeededPatCache::global();
    cache.clear();
    HebSchemeConfig scheme_cfg;
    SimConfig base = cacheTestConfig();
    cache.get(base, scheme_cfg);

    // The profiler races bank models only: run length, budget and
    // seed cannot change the seeded table, so they must share it.
    SimConfig other = base;
    other.durationSeconds *= 4.0;
    other.budgetW += 40.0;
    other.seed = 7;
    other.numServers += 2;
    cache.get(other, scheme_cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(SeededPatCache, MatchesDirectSeeding)
{
    auto &cache = SeededPatCache::global();
    cache.clear();
    SimConfig cfg = cacheTestConfig();
    HebSchemeConfig scheme_cfg;
    auto cached = cache.get(cfg, scheme_cfg);
    PowerAllocationTable direct = buildSeededPat(cfg, scheme_cfg);
    ASSERT_EQ(cached->size(), direct.size());
    for (std::size_t i = 0; i < direct.entries().size(); ++i) {
        EXPECT_DOUBLE_EQ(cached->entries()[i].rLambda,
                         direct.entries()[i].rLambda);
    }
}

} // namespace
} // namespace heb

/** @file SimResult persistence and config-driven SimConfig. */

#include <cstdio>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/result_io.h"
#include "util/csv.h"

namespace heb {
namespace {

TEST(ResultIo, SeriesRoundTrip)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    SimResult r = runOne(cfg, "WC", SchemeKind::ScFirst);

    std::string prefix = testing::TempDir() + "heb_result";
    writeResultSeries(r, prefix);

    CsvTable ticks = readCsv(prefix + "_ticks.csv");
    EXPECT_EQ(ticks.rows.size(), r.demandW.size());
    EXPECT_DOUBLE_EQ(ticks.rows[10][1], r.demandW[10]);

    CsvTable slots = readCsv(prefix + "_slots.csv");
    EXPECT_EQ(slots.rows.size(), r.scSoc.size());

    std::remove((prefix + "_ticks.csv").c_str());
    std::remove((prefix + "_slots.csv").c_str());
}

TEST(ResultIo, MetricsTable)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    std::vector<SimResult> results;
    results.push_back(runOne(cfg, "WC", SchemeKind::BaOnly));
    results.push_back(runOne(cfg, "WC", SchemeKind::HebD));

    std::string path = testing::TempDir() + "heb_metrics.csv";
    writeResultMetrics(results, path);
    CsvTable t = readCsv(path);
    EXPECT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.columns.front(), "scheme");
    EXPECT_EQ(t.rawRows[0][0], "BaOnly");
    EXPECT_EQ(t.rawRows[1][0], "HEB-D");
    std::remove(path.c_str());
}

TEST(ResultIo, SimConfigFromConfigDefaults)
{
    Config empty = Config::fromString("");
    SimConfig cfg = simConfigFromConfig(empty);
    SimConfig defaults;
    EXPECT_EQ(cfg.numServers, defaults.numServers);
    EXPECT_DOUBLE_EQ(cfg.budgetW, defaults.budgetW);
    EXPECT_DOUBLE_EQ(cfg.durationSeconds, defaults.durationSeconds);
}

TEST(ResultIo, SimConfigFromConfigOverrides)
{
    Config c = Config::fromString(
        "servers = 12\nbudget_w = 520\nduration_hours = 6\n"
        "solar = true\nsolar_rated_w = 800\nsc_wh = 60\n"
        "battery_aging = true\ndvfs_capping = true\nseed = 7");
    SimConfig cfg = simConfigFromConfig(c);
    EXPECT_EQ(cfg.numServers, 12u);
    EXPECT_DOUBLE_EQ(cfg.budgetW, 520.0);
    EXPECT_DOUBLE_EQ(cfg.durationSeconds, 6.0 * 3600.0);
    EXPECT_TRUE(cfg.solarPowered);
    EXPECT_DOUBLE_EQ(cfg.solarParams.ratedPowerW, 800.0);
    EXPECT_DOUBLE_EQ(cfg.scEnergyWh, 60.0);
    EXPECT_TRUE(cfg.batteryAging);
    EXPECT_TRUE(cfg.dvfsCapping);
    EXPECT_EQ(cfg.seed, 7u);
}

} // namespace
} // namespace heb

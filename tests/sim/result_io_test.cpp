/** @file SimResult persistence and config-driven SimConfig. */

#include <cstdio>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/result_io.h"
#include "util/csv.h"

namespace heb {
namespace {

TEST(ResultIo, SeriesRoundTrip)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    SimResult r = runOne(cfg, "WC", SchemeKind::ScFirst);

    std::string prefix = testing::TempDir() + "heb_result";
    writeResultSeries(r, prefix);

    CsvTable ticks = readCsv(prefix + "_ticks.csv");
    EXPECT_EQ(ticks.rows.size(), r.demandW.size());
    EXPECT_DOUBLE_EQ(ticks.rows[10][1], r.demandW[10]);

    CsvTable slots = readCsv(prefix + "_slots.csv");
    EXPECT_EQ(slots.rows.size(), r.scSoc.size());

    std::remove((prefix + "_ticks.csv").c_str());
    std::remove((prefix + "_slots.csv").c_str());
}

TEST(ResultIo, MetricsTable)
{
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    std::vector<SimResult> results;
    results.push_back(runOne(cfg, "WC", SchemeKind::BaOnly));
    results.push_back(runOne(cfg, "WC", SchemeKind::HebD));

    std::string path = testing::TempDir() + "heb_metrics.csv";
    writeResultMetrics(results, path);
    CsvTable t = readCsv(path);
    EXPECT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.columns.front(), "scheme");
    EXPECT_EQ(t.rawRows[0][0], "BaOnly");
    EXPECT_EQ(t.rawRows[1][0], "HEB-D");
    std::remove(path.c_str());
}

TEST(ResultIo, MetricsRoundTripExact)
{
    // The metrics CSV used std::to_string (fixed six decimals),
    // which truncated small magnitudes to 0.000000 and collapsed
    // one-ulp differences. Values must now read back bit-for-bit.
    SimResult r;
    r.schemeName = "X";
    r.workloadName = "Y";
    r.durationSeconds = 7200.0;
    r.energyEfficiency = 0.1 + 0.2;         // 0.30000000000000004
    r.effectiveEfficiency = 1.0 / 3.0;
    r.downtimeSeconds = 1.5e-7;             // to_string -> 0.000000
    r.batteryLifetimeYears = 3.7500000000000004;
    r.reu = 0.9999999999999999;
    r.ledger.sourceToLoadWh = 0.0;
    r.ledger.scToLoadWh = 2.5e-7;
    r.ledger.unservedWh = 1e-7;

    std::string path = testing::TempDir() + "heb_metrics_exact.csv";
    writeResultMetrics({r}, path);
    CsvTable t = readCsv(path);
    ASSERT_EQ(t.rows.size(), 1u);
    auto col = [&](const char *name) {
        return t.rows[0][t.columnIndex(name)];
    };
    EXPECT_EQ(col("efficiency"), r.energyEfficiency);
    EXPECT_EQ(col("effective_efficiency"), r.effectiveEfficiency);
    EXPECT_EQ(col("downtime_s"), r.downtimeSeconds);
    EXPECT_EQ(col("battery_life_years"), r.batteryLifetimeYears);
    EXPECT_EQ(col("reu"), r.reu);
    EXPECT_EQ(col("buffer_to_load_wh"), r.ledger.bufferToLoadWh());
    EXPECT_EQ(col("unserved_wh"), r.ledger.unservedWh);
    std::remove(path.c_str());
}

TEST(ResultIo, RecordSeriesConfigKey)
{
    Config c = Config::fromString("record_series = false");
    EXPECT_FALSE(simConfigFromConfig(c).recordSeries);
    SimConfig defaults;
    EXPECT_TRUE(defaults.recordSeries);
}

TEST(ResultIo, SimConfigFromConfigDefaults)
{
    Config empty = Config::fromString("");
    SimConfig cfg = simConfigFromConfig(empty);
    SimConfig defaults;
    EXPECT_EQ(cfg.numServers, defaults.numServers);
    EXPECT_DOUBLE_EQ(cfg.budgetW, defaults.budgetW);
    EXPECT_DOUBLE_EQ(cfg.durationSeconds, defaults.durationSeconds);
}

TEST(ResultIo, SimConfigFromConfigOverrides)
{
    Config c = Config::fromString(
        "servers = 12\nbudget_w = 520\nduration_hours = 6\n"
        "solar = true\nsolar_rated_w = 800\nsc_wh = 60\n"
        "battery_aging = true\ndvfs_capping = true\nseed = 7");
    SimConfig cfg = simConfigFromConfig(c);
    EXPECT_EQ(cfg.numServers, 12u);
    EXPECT_DOUBLE_EQ(cfg.budgetW, 520.0);
    EXPECT_DOUBLE_EQ(cfg.durationSeconds, 6.0 * 3600.0);
    EXPECT_TRUE(cfg.solarPowered);
    EXPECT_DOUBLE_EQ(cfg.solarParams.ratedPowerW, 800.0);
    EXPECT_DOUBLE_EQ(cfg.scEnergyWh, 60.0);
    EXPECT_TRUE(cfg.batteryAging);
    EXPECT_TRUE(cfg.dvfsCapping);
    EXPECT_EQ(cfg.seed, 7u);
}

} // namespace
} // namespace heb

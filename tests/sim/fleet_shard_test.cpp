/**
 * @file
 * Multi-process sharded fleet engine tests: planner properties, the
 * byte-identity witness across --shards counts (full and slim, with
 * faults, across per-shard job counts), checkpoint resume across
 * differing shard counts in both directions, the decline
 * instrumentation, and the crash diagnostic (a SIGKILLed child must
 * name its shard's racks, not hang).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "sim/fleet_shard.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &tag)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / ("heb_shard_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Calm phase-structured profile (see fleet_test.cpp). */
ProfileParams
calmProfile(const std::string &name, double high_util)
{
    ProfileParams p;
    p.name = name;
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

/**
 * A fleet wide enough that every shard layout under test (2, 3, 4
 * shards) gets multiple racks, with faults on so the all-or-nothing
 * span logic and the wire protocol see declined probes too.
 */
struct ShardRig
{
    /**
     * @param contended  Oversubscribe the facility during high-
     *                   phase collisions so the fast-forward
     *                   decline counters see real traffic. The
     *                   default calm rig keeps headroom everywhere
     *                   so bank-idle macro spans (and the batch
     *                   kernel) engage instead.
     */
    explicit ShardRig(bool slim, double hours = 4.0,
                      bool contended = false)
    {
        cfg.durationSeconds = hours * 3600.0;
        cfg.faultInjection = true;
        cfg.faultPlan.atsFailuresPerDay = 0.0;
        // Frequent long converter trips (see soa_equivalence_test):
        // with the buffer stage down a rack is bank-idle, so whole-
        // fleet idle spans arise and the batch kernel engages; the
        // trip edges also shorten horizons, so the decline counters
        // see real traffic.
        cfg.faultPlan.converterTripsPerDay = 48.0;
        cfg.faultPlan.converterRestartSeconds = 1800.0;
        if (slim)
            cfg.recordSeries = false;
        for (std::size_t i = 0; i < 6; ++i) {
            double util =
                contended
                    ? 0.30 + 0.15 * static_cast<double>(i % 4)
                    : 0.10 + 0.05 * static_cast<double>(i % 4);
            workloads.push_back(
                std::make_unique<SyntheticWorkload>(
                    calmProfile("S" + std::to_string(i), util),
                    i + 1));
            schemes.push_back(makeScheme(SchemeKind::HebD));
            specs.push_back(RackSpec{"rack" + std::to_string(i),
                                     workloads[i].get(),
                                     schemes[i].get()});
        }
        // Contended: between the all-low fleet demand and the
        // overlap of two high phases, so high-phase collisions
        // oversubscribe the facility while low phases leave
        // headroom for macro spans.
        budget = (contended ? 205.0 : 260.0) *
                 static_cast<double>(specs.size());
    }

    SimConfig cfg;
    double budget = 0.0;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
};

std::string
runJson(ShardRig &rig, std::size_t shards, bool slim,
        FleetResult *out = nullptr,
        const CheckpointOptions &ckpt = {})
{
    FleetOptions options{BudgetPolicy::Proportional,
                         FleetMode::Event, !slim};
    options.shards = shards;
    FleetSimulator fleet(rig.cfg, rig.budget, options);
    FleetResult r = fleet.run(rig.specs, ckpt);
    std::string json = fleetResultToJson(r);
    if (out)
        *out = std::move(r);
    return json;
}

TEST(ShardPlanner, ContiguousBalancedRanges)
{
    for (std::size_t racks : {2u, 5u, 7u, 64u}) {
        for (std::size_t shards = 1; shards <= racks; ++shards) {
            std::vector<ShardRange> plan =
                planShards(racks, shards);
            ASSERT_EQ(plan.size(), shards);
            EXPECT_EQ(plan.front().begin, 0u);
            EXPECT_EQ(plan.back().end, racks);
            std::size_t min_sz = racks, max_sz = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                if (s) {
                    EXPECT_EQ(plan[s].begin, plan[s - 1].end)
                        << "gap before shard " << s;
                }
                EXPECT_GT(plan[s].size(), 0u);
                min_sz = std::min(min_sz, plan[s].size());
                max_sz = std::max(max_sz, plan[s].size());
            }
            EXPECT_LE(max_sz - min_sz, 1u)
                << racks << " racks / " << shards << " shards";
        }
    }
}

TEST(ShardPlanner, ResolveShardCount)
{
    EXPECT_EQ(resolveShardCount(1, 100), 1u);
    EXPECT_EQ(resolveShardCount(4, 100), 4u);
    // Clamped to the rack count; a single rack is never sharded.
    EXPECT_EQ(resolveShardCount(8, 3), 3u);
    EXPECT_EQ(resolveShardCount(8, 1), 1u);
    EXPECT_EQ(resolveShardCount(0, 1), 1u);
    // Auto is at least one and never exceeds the rack count.
    std::size_t auto_n = resolveShardCount(0, 4);
    EXPECT_GE(auto_n, 1u);
    EXPECT_LE(auto_n, 4u);
}

TEST(ShardFleet, DenseEngineRefusesShards)
{
    FleetOptions options{BudgetPolicy::Static, FleetMode::Dense,
                         true};
    options.shards = 2;
    EXPECT_EXIT(options.validate(), testing::ExitedWithCode(1),
                "sharding needs the event engine");
}

/**
 * The headline witness: the full %.17g fleet result document —
 * physics, engine counters, decline instrumentation and per-rack
 * results — is byte-identical across shard counts, including a
 * count that does not divide the rack count evenly.
 */
TEST(ShardFleet, ResultByteIdenticalAcrossShardCounts)
{
    ShardRig rig1(false);
    std::string one = runJson(rig1, 1, false);
    for (std::size_t shards : {2u, 4u}) {
        ShardRig rign(false);
        EXPECT_EQ(runJson(rign, shards, false), one)
            << shards << " shards diverged from in-process";
    }
}

TEST(ShardFleet, SlimPathIdenticalAndBatchKernelEngages)
{
    ShardRig rig1(true);
    FleetResult in_proc;
    std::string one = runJson(rig1, 1, true, &in_proc);

    ShardRig rig3(true);
    FleetResult sharded;
    EXPECT_EQ(runJson(rig3, 3, true, &sharded), one);

    // The slim event path runs the SoA batch kernels; the sharded
    // engine must engage them in the children exactly as often.
    EXPECT_GT(in_proc.shardKernelSpans, 0ul);
    EXPECT_EQ(sharded.shardKernelSpans, in_proc.shardKernelSpans);

    // Shard children report their peak RSS; in-process runs don't.
    EXPECT_TRUE(in_proc.shardPeakRssBytes.empty());
    ASSERT_EQ(sharded.shardPeakRssBytes.size(), 3u);
    for (std::uint64_t rss : sharded.shardPeakRssBytes)
        EXPECT_GT(rss, 0u);
}

TEST(ShardFleet, PerShardJobCountDoesNotChangeResults)
{
    // configuredJobs() is inherited by the children as their pool
    // width, so pinning it exercises sharding x threading.
    ThreadPool::configureGlobal(1);
    ShardRig rig1(true);
    std::string serial = runJson(rig1, 2, true);
    ThreadPool::configureGlobal(3);
    ShardRig rig3(true);
    std::string pooled = runJson(rig3, 2, true);
    ThreadPool::configureGlobal(0);
    EXPECT_EQ(serial, pooled);
}

TEST(ShardFleet, DeclineCountersMatchInProcessEngine)
{
    ShardRig rig1(false, 4.0, true);
    FleetResult in_proc;
    runJson(rig1, 1, false, &in_proc);
    ShardRig rig2(false, 4.0, true);
    FleetResult sharded;
    runJson(rig2, 2, false, &sharded);

    // The faulty rig declines spans; the counters are part of the
    // byte-identity contract, not best-effort statistics.
    EXPECT_GT(in_proc.ffNotCalmTicks + in_proc.ffHorizonDeclines +
                  in_proc.ffProbeDeclines,
              0ul);
    EXPECT_EQ(sharded.ffNotCalmTicks, in_proc.ffNotCalmTicks);
    EXPECT_EQ(sharded.ffHorizonDeclines,
              in_proc.ffHorizonDeclines);
    EXPECT_EQ(sharded.ffProbeDeclines, in_proc.ffProbeDeclines);
    ASSERT_EQ(sharded.ffDeclinedSpanHist.size(),
              kFfDeclineHistBins);
    for (std::size_t b = 0; b < kFfDeclineHistBins; ++b)
        EXPECT_EQ(sharded.ffDeclinedSpanHist[b],
                  in_proc.ffDeclinedSpanHist[b])
            << "hist bin " << b;
    // Probe declines populate the histogram.
    unsigned long hist_total = 0;
    for (unsigned long c : in_proc.ffDeclinedSpanHist)
        hist_total += c;
    EXPECT_EQ(hist_total, in_proc.ffProbeDeclines);
}

TEST(ShardFleet, FfDeclineFieldsInResultJson)
{
    ShardRig rig(true, 2.0);
    std::string json = runJson(rig, 2, true);
    EXPECT_NE(json.find("\"ff_not_calm_ticks\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ff_horizon_declines\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ff_probe_declines\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ff_declined_span_hist\""),
              std::string::npos);
}

/**
 * Kill-and-resume across *differing* shard counts, both directions:
 * checkpoint under 3 shards, resume under 2 and in-process (and the
 * reverse), all byte-identical to the uninterrupted run. The shard
 * files are per rack, so the layout that wrote them is irrelevant.
 */
TEST(ShardFleet, ResumeAcrossDifferentShardCounts)
{
    ShardRig ref_rig(true);
    const std::string reference = runJson(ref_rig, 1, true);

    auto checkpoint_then_resume = [&](std::size_t write_shards,
                                      std::size_t resume_shards,
                                      const std::string &tag) {
        CheckpointOptions every;
        every.everySimSeconds = ref_rig.cfg.durationSeconds / 3.0;
        every.dir = freshDir(tag);
        ShardRig write_rig(true);
        EXPECT_EQ(runJson(write_rig, write_shards, true, nullptr,
                          every),
                  reference)
            << "checkpointing under " << write_shards
            << " shards perturbed the run";

        // "Kill" between the 1/3 and 2/3 snapshots: drop the newest
        // manifest + shard files, resume from the survivor.
        std::uint64_t newest = 0;
        for (std::uint64_t t :
             listCheckpointTicks(every.dir, "fleet"))
            newest = std::max(newest, t);
        ASSERT_GT(newest, 0u);
        fs::remove(checkpointFilePath(every.dir, "fleet", newest));
        for (std::size_t r = 0; r < write_rig.specs.size(); ++r)
            fs::remove(
                fleetShardCheckpointPath(every.dir, newest, r));

        CheckpointOptions resume;
        resume.dir = every.dir;
        resume.resume = true;
        ShardRig resume_rig(true);
        EXPECT_EQ(runJson(resume_rig, resume_shards, true, nullptr,
                          resume),
                  reference)
            << tag << ": resume under " << resume_shards
            << " shards diverged";
    };

    checkpoint_then_resume(3, 2, "w3r2");
    checkpoint_then_resume(3, 1, "w3r1");
    checkpoint_then_resume(1, 3, "w1r3");
}

TEST(ShardFleetDeath, CrashedChildNamesItsRacks)
{
    // Quiesce the global pool first: configureGlobal joins any
    // workers earlier tests spawned, so the death test's fork
    // starts from (nearly) one thread.
    ThreadPool::configureGlobal(1);
    // Shard 1 of 3 owns racks 2..3; killing it after a few ticks
    // must produce a prompt diagnostic naming shard, racks and the
    // in-flight command — never a hang on a dead pipe.
    EXPECT_EXIT(
        {
            setenv("HEB_SHARD_TEST_CRASH", "1:3", 1);
            ShardRig rig(true, 1.0);
            runJson(rig, 3, true);
        },
        testing::ExitedWithCode(1),
        "fleet shard 1 .*rack2.*killed by signal 9 during 'tick'");
    ThreadPool::configureGlobal(0);
}

} // namespace
} // namespace heb

/**
 * @file
 * SharedPlanCache under concurrent interning: many ThreadPool
 * workers requesting overlapping keys must build each plan exactly
 * once, hand every requester the same instance, and keep the
 * hit/miss counters consistent with the request count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "sim/plan_cache.h"
#include "util/thread_pool.h"

namespace heb {
namespace {

TEST(PlanCache, ConcurrentWorkloadInterningBuildsOncePerKey)
{
    constexpr std::size_t kRequests = 64;
    constexpr std::uint64_t kSeeds = 4;

    ThreadPool::configureGlobal(8);
    SharedPlanCache cache;
    std::vector<std::size_t> idx(kRequests);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::vector<std::shared_ptr<const SyntheticWorkload>> got =
        parallelMap(idx, [&](std::size_t i) {
            return cache.workload("TS", i % kSeeds);
        });
    ThreadPool::configureGlobal(0);

    // One generation per key: every same-key requester got the
    // exact same instance, so there are kSeeds distinct plans.
    std::set<const SyntheticWorkload *> distinct;
    for (std::size_t i = 0; i < kRequests; ++i) {
        ASSERT_TRUE(got[i]);
        EXPECT_EQ(got[i].get(), got[i % kSeeds].get())
            << "request " << i << " got a different instance";
        distinct.insert(got[i].get());
    }
    EXPECT_EQ(distinct.size(), kSeeds);
    EXPECT_EQ(cache.size(), kSeeds);

    // Counter consistency: every request is a hit or a miss, and
    // concurrent misses on one key count once per *build*, so the
    // miss count is exactly the key count.
    EXPECT_EQ(cache.misses(), kSeeds);
    EXPECT_EQ(cache.hits() + cache.misses(), kRequests);
}

TEST(PlanCache, ConcurrentSolarTraceInterning)
{
    constexpr std::size_t kRequests = 32;
    SolarParams params;
    params.ratedPowerW = 500.0;

    ThreadPool::configureGlobal(8);
    SharedPlanCache cache;
    std::vector<std::size_t> idx(kRequests);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::vector<std::shared_ptr<const TimeSeries>> got =
        parallelMap(idx, [&](std::size_t i) {
            // Two distinct grids interleaved.
            double step = (i % 2) ? 1.0 : 2.0;
            return cache.solarTrace(params, 3600.0, step, 42);
        });
    ThreadPool::configureGlobal(0);

    std::set<const TimeSeries *> distinct;
    for (const auto &p : got) {
        ASSERT_TRUE(p);
        distinct.insert(p.get());
    }
    EXPECT_EQ(distinct.size(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), kRequests - 2u);

    // Interleaved requests landed on the right grid.
    EXPECT_EQ(got[1]->stepSeconds(), 1.0);
    EXPECT_EQ(got[2]->stepSeconds(), 2.0);
    EXPECT_EQ(got[0].get(), got[2].get());
    EXPECT_EQ(got[1].get(), got[3].get());

    // clear() drops entries and zeroes the counters.
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

} // namespace
} // namespace heb

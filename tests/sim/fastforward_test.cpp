/**
 * @file
 * Fast-forward equivalence: the event-horizon macro-tick engine must
 * be an invisible optimization. Every scenario here runs twice —
 * dense 1 s ticking and fast-forward — and the two SimResults must
 * serialize to byte-identical JSON under the round-trip-exact
 * (%.17g) witness, i.e. agree to the last ulp of every tick sample.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

/** Run (workload, scheme) under @p cfg with fastForward = @p ff. */
std::string
runMode(SimConfig cfg, const std::string &workload, SchemeKind kind,
        bool ff)
{
    cfg.fastForward = ff;
    return simResultToJson(runOne(cfg, workload, kind));
}

/** A 6 h scenario with outages and fault injection. */
SimConfig
stressConfig()
{
    SimConfig cfg;
    cfg.durationSeconds = 6.0 * 3600.0;
    cfg.outages = {{2.0 * 3600.0, 300.0}, {4.0 * 3600.0, 90.0}};
    cfg.faultInjection = true;
    return cfg;
}

TEST(FastForward, BaOnlyEquivalentUnderFaults)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runMode(cfg, "WC", SchemeKind::BaOnly, false),
              runMode(cfg, "WC", SchemeKind::BaOnly, true));
}

TEST(FastForward, ScFirstEquivalentUnderFaults)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runMode(cfg, "WC", SchemeKind::ScFirst, false),
              runMode(cfg, "WC", SchemeKind::ScFirst, true));
}

TEST(FastForward, BaFirstEquivalentUnderFaults)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runMode(cfg, "TS", SchemeKind::BaFirst, false),
              runMode(cfg, "TS", SchemeKind::BaFirst, true));
}

TEST(FastForward, HebDEquivalentUnderFaults)
{
    SimConfig cfg = stressConfig();
    EXPECT_EQ(runMode(cfg, "TS", SchemeKind::HebD, false),
              runMode(cfg, "TS", SchemeKind::HebD, true));
}

TEST(FastForward, HebDEquivalentWithDegradationLadder)
{
    SimConfig cfg = stressConfig();
    cfg.degradationPolicy = true;
    EXPECT_EQ(runMode(cfg, "WS", SchemeKind::HebD, false),
              runMode(cfg, "WS", SchemeKind::HebD, true));
}

TEST(FastForward, SolarEquivalent)
{
    // Solar supply changes every sample, so the horizon collapses to
    // the next tick and the kernel never engages — but the flag must
    // still be a no-op on the results.
    SimConfig cfg;
    cfg.durationSeconds = 6.0 * 3600.0;
    cfg.solarPowered = true;
    EXPECT_EQ(runMode(cfg, "MS", SchemeKind::HebD, false),
              runMode(cfg, "MS", SchemeKind::HebD, true));
}

/**
 * An outage-sparse, jitter-free profile: long flat phases are the
 * regime the fast-forward engine targets, and the kernel must both
 * engage (macro-ticks actually taken) and stay exact.
 */
ProfileParams
calmProfile()
{
    ProfileParams p;
    p.name = "CALM";
    p.peakClass = PeakClass::Large;
    // Both phases fit under the default 260 W budget (~252 W and
    // ~201 W for six 30/70 W servers at the high DVFS level): the
    // engine only fast-forwards quiescent spans, so a profile that
    // browns the cluster out would never let the kernel engage.
    p.highUtil = 0.30;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

TEST(FastForward, EngagesAndStaysExactOnCalmWorkload)
{
    SimConfig cfg;
    cfg.durationSeconds = 12.0 * 3600.0;
    cfg.outages = {{6.0 * 3600.0, 120.0}};
    SyntheticWorkload workload(calmProfile(), cfg.seed);

    cfg.fastForward = false;
    auto dense_scheme = makeScheme(SchemeKind::ScFirst);
    std::string dense = simResultToJson(
        Simulator(cfg).run(workload, *dense_scheme));

    // Trace the fast-forward run to prove macro-ticks were taken:
    // equivalence alone would also pass if the kernel always bailed.
    obs::setTelemetryLevel(obs::TelemetryLevel::Full);
    obs::TraceRecorder trace(1 << 16);
    obs::setActiveTrace(&trace);
    cfg.fastForward = true;
    auto ff_scheme = makeScheme(SchemeKind::ScFirst);
    std::string ff = simResultToJson(
        Simulator(cfg).run(workload, *ff_scheme));
    obs::setActiveTrace(nullptr);
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);

    EXPECT_EQ(dense, ff);
    int quiescent = 0;
    for (const auto &ev : trace.snapshot())
        quiescent += ev.kind == obs::TraceEventKind::Quiescent;
    EXPECT_GT(quiescent, 0)
        << "kernel never engaged on a jitter-free workload";
}

TEST(FastForward, PartialTrailingTickIsSimulated)
{
    // A duration that is not a whole multiple of the tick used to be
    // silently truncated by the duration/dt cast; the trailing
    // partial interval now runs as one full tick.
    SimConfig cfg;
    cfg.durationSeconds = 3605.5;
    SimResult r = runOne(cfg, "WC", SchemeKind::ScFirst);
    EXPECT_EQ(r.demandW.size(), 3606u);
    EXPECT_EQ(r.supplyW.size(), 3606u);
    EXPECT_EQ(r.unservedW.size(), 3606u);
}

} // namespace
} // namespace heb

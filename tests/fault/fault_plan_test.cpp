/** @file Seeded fault-plan generation. */

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "util/units.h"

namespace heb {
namespace fault {
namespace {

constexpr double kTwoDays = 2.0 * kSecondsPerDay;

bool
samePlans(const FaultPlan &a, const FaultPlan &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const FaultEvent &x = a.events()[i];
        const FaultEvent &y = b.events()[i];
        if (x.kind != y.kind || x.startSeconds != y.startSeconds ||
            x.durationSeconds != y.durationSeconds ||
            x.magnitude != y.magnitude ||
            x.secondary != y.secondary || x.target != y.target)
            return false;
    }
    return true;
}

TEST(FaultPlan, SameSeedSamePlan)
{
    FaultPlanParams params;
    FaultPlan a = FaultPlan::generate(params, kTwoDays, 1234);
    FaultPlan b = FaultPlan::generate(params, kTwoDays, 1234);
    EXPECT_TRUE(samePlans(a, b));
    EXPECT_GT(a.size(), 0u);
}

TEST(FaultPlan, DifferentSeedDifferentPlan)
{
    FaultPlanParams params;
    FaultPlan a = FaultPlan::generate(params, kTwoDays, 1);
    FaultPlan b = FaultPlan::generate(params, kTwoDays, 2);
    EXPECT_FALSE(samePlans(a, b));
}

TEST(FaultPlan, EventsSortedByStart)
{
    FaultPlan plan = FaultPlan::generate({}, kTwoDays, 77);
    for (std::size_t i = 1; i < plan.size(); ++i) {
        EXPECT_LE(plan.events()[i - 1].startSeconds,
                  plan.events()[i].startSeconds);
    }
    for (const FaultEvent &ev : plan.events()) {
        EXPECT_GE(ev.startSeconds, 0.0);
        EXPECT_LT(ev.startSeconds, kTwoDays);
    }
}

TEST(FaultPlan, ZeroRatesYieldEmptyPlan)
{
    FaultPlanParams params;
    params.weakCellsPerDay = 0.0;
    params.scAgingEventsPerDay = 0.0;
    params.converterTripsPerDay = 0.0;
    params.atsFailuresPerDay = 0.0;
    params.sensorDropoutsPerDay = 0.0;
    params.sensorJitterEventsPerDay = 0.0;
    FaultPlan plan = FaultPlan::generate(params, kTwoDays, 1);
    EXPECT_EQ(plan.size(), 0u);
}

TEST(FaultPlan, HigherRateMoreEvents)
{
    FaultPlanParams sparse;
    sparse.converterTripsPerDay = 0.5;
    FaultPlanParams dense = sparse;
    dense.converterTripsPerDay = 20.0;
    // Average over seeds so the comparison is about the rate, not
    // one draw.
    std::size_t sparse_n = 0, dense_n = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        sparse_n += FaultPlan::generate(sparse, kTwoDays, seed)
                        .ofKind(FaultKind::ConverterTrip)
                        .size();
        dense_n += FaultPlan::generate(dense, kTwoDays, seed)
                       .ofKind(FaultKind::ConverterTrip)
                       .size();
    }
    EXPECT_GT(dense_n, sparse_n * 4);
}

TEST(FaultPlan, KindStreamsAreIndependent)
{
    // Cranking the ATS rate must not move the converter trips: each
    // kind draws from its own forked stream.
    FaultPlanParams base;
    FaultPlanParams noisy = base;
    noisy.atsFailuresPerDay = 50.0;
    auto trips_a = FaultPlan::generate(base, kTwoDays, 9)
                       .ofKind(FaultKind::ConverterTrip);
    auto trips_b = FaultPlan::generate(noisy, kTwoDays, 9)
                       .ofKind(FaultKind::ConverterTrip);
    ASSERT_EQ(trips_a.size(), trips_b.size());
    for (std::size_t i = 0; i < trips_a.size(); ++i) {
        EXPECT_DOUBLE_EQ(trips_a[i].startSeconds,
                         trips_b[i].startSeconds);
    }
}

TEST(FaultPlan, EventFieldsMatchParams)
{
    FaultPlanParams params;
    FaultPlan plan = FaultPlan::generate(params, 20.0 * kTwoDays, 5);
    for (const FaultEvent &ev :
         plan.ofKind(FaultKind::BatteryWeakCell)) {
        EXPECT_DOUBLE_EQ(ev.magnitude,
                         params.weakCellCapacityFactor);
        EXPECT_DOUBLE_EQ(ev.secondary,
                         params.weakCellResistanceFactor);
        EXPECT_DOUBLE_EQ(ev.durationSeconds, 0.0);
    }
    for (const FaultEvent &ev :
         plan.ofKind(FaultKind::ConverterTrip)) {
        EXPECT_DOUBLE_EQ(ev.durationSeconds,
                         params.converterRestartSeconds);
    }
    for (const FaultEvent &ev :
         plan.ofKind(FaultKind::SensorJitter)) {
        EXPECT_DOUBLE_EQ(ev.magnitude,
                         params.sensorJitterMagnitude);
        EXPECT_DOUBLE_EQ(ev.durationSeconds,
                         params.sensorJitterSeconds);
    }
}

TEST(FaultPlan, OfKindFiltersAndAddSorts)
{
    FaultPlan plan;
    FaultEvent late;
    late.kind = FaultKind::SensorDropout;
    late.startSeconds = 100.0;
    FaultEvent early;
    early.kind = FaultKind::ConverterTrip;
    early.startSeconds = 10.0;
    plan.add(late);
    plan.add(early);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::ConverterTrip);
    EXPECT_EQ(plan.ofKind(FaultKind::SensorDropout).size(), 1u);
    EXPECT_EQ(plan.ofKind(FaultKind::ScEsrAging).size(), 0u);
}

TEST(FaultPlan, KindNamesAreStable)
{
    EXPECT_STREQ(faultKindName(FaultKind::BatteryWeakCell),
                 "battery-weak-cell");
    EXPECT_STREQ(faultKindName(FaultKind::AtsTransferFailure),
                 "ats-transfer-failure");
}

TEST(FaultPlan, DescribeMentionsKindAndTime)
{
    FaultEvent ev;
    ev.kind = FaultKind::ConverterTrip;
    ev.startSeconds = 120.0;
    ev.durationSeconds = 180.0;
    std::string text = ev.describe();
    EXPECT_NE(text.find("converter-trip"), std::string::npos);
    EXPECT_NE(text.find("t=120"), std::string::npos);
}

} // namespace
} // namespace fault
} // namespace heb

/** @file Tick-level fault injection and sensor-fault telemetry. */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"

namespace heb {
namespace fault {
namespace {

FaultEvent
makeEvent(FaultKind kind, double start, double duration = 0.0,
          double magnitude = 0.0)
{
    FaultEvent ev;
    ev.kind = kind;
    ev.startSeconds = start;
    ev.durationSeconds = duration;
    ev.magnitude = magnitude;
    return ev;
}

TEST(FaultInjector, PollFiresEachEventExactlyOnce)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::ConverterTrip, 10.0, 60.0));
    plan.add(makeEvent(FaultKind::ScEsrAging, 25.0, 0.0, 1.4));
    FaultInjector inj(plan);

    std::vector<FaultKind> fired;
    auto on_start = [&fired](const FaultEvent &ev) {
        fired.push_back(ev.kind);
    };
    inj.poll(5.0, on_start);
    EXPECT_TRUE(fired.empty());
    inj.poll(10.0, on_start); // onset at exactly now fires
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], FaultKind::ConverterTrip);
    inj.poll(11.0, on_start); // no re-fire on later polls
    EXPECT_EQ(fired.size(), 1u);
    inj.poll(100.0, on_start);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1], FaultKind::ScEsrAging);
    EXPECT_EQ(inj.appliedEvents().size(), 2u);
}

TEST(FaultInjector, NullCallbackLogsOnly)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorDropout, 1.0, 10.0));
    FaultInjector inj(plan);
    inj.poll(5.0, nullptr);
    EXPECT_EQ(inj.appliedEvents().size(), 1u);
}

TEST(FaultInjector, DropoutFreezesLastGoodReading)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorDropout, 10.0, 20.0));
    FaultInjector inj(plan);

    EXPECT_FALSE(inj.sensorDropoutActive(9.0));
    EXPECT_TRUE(inj.sensorDropoutActive(10.0));
    EXPECT_TRUE(inj.sensorDropoutActive(29.9));
    EXPECT_FALSE(inj.sensorDropoutActive(30.0));

    // Feed a good reading before the window, then watch it freeze.
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(5.0, 200.0), 200.0);
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(15.0, 999.0), 200.0);
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(25.0, 500.0), 200.0);
    // Window over: live readings again.
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(31.0, 300.0), 300.0);
}

TEST(FaultInjector, DropoutWithNoPriorReadingPassesTruth)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorDropout, 0.0, 10.0));
    FaultInjector inj(plan);
    // Nothing to freeze at yet: the true value passes through.
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(1.0, 123.0), 123.0);
}

TEST(FaultInjector, JitterIsBoundedAndWindowed)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorJitter, 100.0, 50.0, 0.2));
    FaultInjector inj(plan, 7);

    EXPECT_DOUBLE_EQ(inj.sensorJitterMagnitude(99.0), 0.0);
    EXPECT_DOUBLE_EQ(inj.sensorJitterMagnitude(120.0), 0.2);
    EXPECT_DOUBLE_EQ(inj.sensorJitterMagnitude(150.0), 0.0);

    EXPECT_DOUBLE_EQ(inj.filterTelemetry(50.0, 100.0), 100.0);
    bool saw_change = false;
    for (int i = 0; i < 20; ++i) {
        double t = 100.0 + i;
        double v = inj.filterTelemetry(t, 100.0);
        EXPECT_GE(v, 80.0);
        EXPECT_LE(v, 120.0);
        saw_change |= v != 100.0;
    }
    EXPECT_TRUE(saw_change);
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(200.0, 100.0), 100.0);
}

TEST(FaultInjector, JitterStreamIsSeedDeterministic)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorJitter, 0.0, 100.0, 0.15));
    FaultInjector a(plan, 42);
    FaultInjector b(plan, 42);
    FaultInjector c(plan, 43);
    bool any_diff = false;
    for (int i = 0; i < 32; ++i) {
        double t = static_cast<double>(i);
        double va = a.filterTelemetry(t, 250.0);
        EXPECT_DOUBLE_EQ(va, b.filterTelemetry(t, 250.0));
        any_diff |= va != c.filterTelemetry(t, 250.0);
    }
    EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, DropoutWinsOverJitter)
{
    FaultPlan plan;
    plan.add(makeEvent(FaultKind::SensorJitter, 0.0, 100.0, 0.5));
    plan.add(makeEvent(FaultKind::SensorDropout, 10.0, 20.0));
    FaultInjector inj(plan, 5);
    inj.filterTelemetry(5.0, 100.0);
    // Inside both windows the reading freezes; the stored last-good
    // value may itself be jittered, but it must not move tick to
    // tick.
    double frozen = inj.filterTelemetry(12.0, 700.0);
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(15.0, 800.0), frozen);
    EXPECT_DOUBLE_EQ(inj.filterTelemetry(20.0, 900.0), frozen);
}

} // namespace
} // namespace fault
} // namespace heb

/** @file hControl slot loop. */

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/schemes.h"
#include "esd/bank_builder.h"

namespace heb {
namespace {

class ControllerTest : public testing::Test
{
  protected:
    ControllerTest()
        : sc_(makeScBank(28.8)), ba_(makeBatteryBank(67.2)),
          scheme_(makeScheme(SchemeKind::HebD)),
          ctrl_(*scheme_, *sc_, *ba_, 600.0)
    {
    }

    std::unique_ptr<EsdPool> sc_;
    std::unique_ptr<EsdPool> ba_;
    std::unique_ptr<ManagementScheme> scheme_;
    HebController ctrl_;
};

TEST_F(ControllerTest, FirstTickOpensSlot)
{
    const SlotPlan &plan = ctrl_.tick(0.0, 250.0, 260.0);
    EXPECT_EQ(ctrl_.completedSlots(), 0u);
    EXPECT_GE(plan.rLambda, 0.0);
}

TEST_F(ControllerTest, SlotRollsOverAtBoundary)
{
    ctrl_.tick(0.0, 250.0, 260.0);
    for (double t = 1.0; t < 600.0; t += 1.0)
        ctrl_.tick(t, 250.0, 260.0);
    EXPECT_EQ(ctrl_.completedSlots(), 0u);
    ctrl_.tick(600.0, 250.0, 260.0);
    EXPECT_EQ(ctrl_.completedSlots(), 1u);
}

TEST_F(ControllerTest, PeakValleyFeedTheScheme)
{
    // Slot 1 sees a 180 W swing; slot 2's plan must classify Large.
    for (double t = 0.0; t < 600.0; t += 1.0) {
        double demand = t < 300.0 ? 400.0 : 220.0;
        ctrl_.tick(t, demand, 260.0);
    }
    const SlotPlan &plan = ctrl_.tick(600.0, 220.0, 260.0);
    EXPECT_EQ(plan.predictedClass, PeakClass::Large);
    EXPECT_NEAR(plan.predictedMismatchW, 180.0, 5.0);
}

TEST_F(ControllerTest, QuietSlotClassifiesSmall)
{
    for (double t = 0.0; t <= 600.0; t += 1.0)
        ctrl_.tick(t, 250.0, 260.0);
    EXPECT_EQ(ctrl_.currentPlan().predictedClass, PeakClass::Small);
}

TEST_F(ControllerTest, SlotSecondsExposed)
{
    EXPECT_DOUBLE_EQ(ctrl_.slotSeconds(), 600.0);
}

TEST(Controller, InvalidSlotLengthRejected)
{
    auto sc = makeScBank(10.0);
    auto ba = makeBatteryBank(10.0);
    auto scheme = makeScheme(SchemeKind::BaOnly);
    EXPECT_EXIT(HebController(*scheme, *sc, *ba, 0.0),
                testing::ExitedWithCode(1), "slot");
}

TEST(Controller, ManySlotAccounting)
{
    auto sc = makeScBank(28.8);
    auto ba = makeBatteryBank(67.2);
    auto scheme = makeScheme(SchemeKind::ScFirst);
    HebController ctrl(*scheme, *sc, *ba, 60.0);
    for (double t = 0.0; t < 600.0; t += 1.0)
        ctrl.tick(t, 250.0, 260.0);
    EXPECT_EQ(ctrl.completedSlots(), 9u);
}

} // namespace
} // namespace heb

/** @file Holt-Winters and naive predictors. */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/predictor.h"

namespace heb {
namespace {

TEST(LastValue, RepeatsLastObservation)
{
    LastValuePredictor p;
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
    p.observe(42.0);
    EXPECT_DOUBLE_EQ(p.predict(), 42.0);
    p.observe(7.0);
    EXPECT_DOUBLE_EQ(p.predict(), 7.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(HoltWinters, ConstantSeriesConverges)
{
    HoltWintersPredictor p(HoltWintersParams{.seasonLength = 0});
    for (int i = 0; i < 50; ++i)
        p.observe(100.0);
    EXPECT_NEAR(p.predict(), 100.0, 1e-6);
    EXPECT_NEAR(p.trend(), 0.0, 1e-6);
}

TEST(HoltWinters, TracksLinearTrend)
{
    HoltWintersPredictor p(HoltWintersParams{.seasonLength = 0});
    for (int i = 0; i < 200; ++i)
        p.observe(10.0 + 2.0 * i);
    // Forecast should be near the next value (damped trend lags a
    // touch).
    EXPECT_NEAR(p.predict(), 10.0 + 2.0 * 200, 5.0);
    EXPECT_GT(p.trend(), 1.0);
}

TEST(HoltWinters, SeasonalActivatesAfterOneSeason)
{
    HoltWintersParams hp;
    hp.seasonLength = 12;
    HoltWintersPredictor p(hp);
    for (int i = 0; i < 11; ++i)
        p.observe(static_cast<double>(i % 12));
    EXPECT_FALSE(p.seasonalActive());
    p.observe(11.0);
    EXPECT_TRUE(p.seasonalActive());
}

TEST(HoltWinters, LearnsSeasonalPattern)
{
    // A pure square seasonal series: after a few seasons, the
    // forecast must anticipate the highs before they happen.
    HoltWintersParams hp;
    hp.seasonLength = 8;
    HoltWintersPredictor p(hp);
    auto value = [](int i) { return (i % 8) < 2 ? 100.0 : 20.0; };
    int i = 0;
    for (; i < 8 * 6; ++i)
        p.observe(value(i));
    // i is now at a season boundary: the next slot is a high slot.
    double forecast_high = p.predict();
    p.observe(value(i++));
    p.observe(value(i++));
    // Next two slots are lows.
    double forecast_low = p.predict();
    EXPECT_GT(forecast_high, forecast_low + 30.0);
}

TEST(HoltWinters, SeasonalBeatsNaiveOnPeriodicSeries)
{
    HoltWintersParams hp;
    hp.seasonLength = 10;
    HoltWintersPredictor hw(hp);
    LastValuePredictor naive;
    auto value = [](int i) { return (i % 10) == 0 ? 200.0 : 50.0; };
    double hw_err = 0.0, naive_err = 0.0;
    for (int i = 0; i < 200; ++i) {
        double v = value(i);
        if (i > 100) { // after warm-up
            hw_err += std::abs(hw.predict() - v);
            naive_err += std::abs(naive.predict() - v);
        }
        hw.observe(v);
        naive.observe(v);
    }
    EXPECT_LT(hw_err, naive_err);
}

TEST(HoltWinters, ResetClearsState)
{
    HoltWintersPredictor p;
    for (int i = 0; i < 300; ++i)
        p.observe(50.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
    EXPECT_FALSE(p.seasonalActive());
}

TEST(HoltWinters, InvalidSmoothingRejected)
{
    HoltWintersParams hp;
    hp.alpha = 1.5;
    EXPECT_EXIT(HoltWintersPredictor{hp}, testing::ExitedWithCode(1),
                "alpha");
}

TEST(MismatchPredictor, PeakMinusValleyFloored)
{
    MismatchPredictor mp = MismatchPredictor::lastValue();
    mp.observeSlot(300.0, 200.0);
    EXPECT_DOUBLE_EQ(mp.predictedPeakW(), 300.0);
    EXPECT_DOUBLE_EQ(mp.predictedValleyW(), 200.0);
    EXPECT_DOUBLE_EQ(mp.predictedMismatchW(), 100.0);
    // Inverted inputs floor at zero.
    mp.observeSlot(100.0, 150.0);
    EXPECT_DOUBLE_EQ(mp.predictedMismatchW(), 0.0);
}

TEST(MismatchPredictor, HoltWintersFactory)
{
    MismatchPredictor mp = MismatchPredictor::holtWinters();
    for (int i = 0; i < 20; ++i)
        mp.observeSlot(400.0, 220.0);
    EXPECT_NEAR(mp.predictedMismatchW(), 180.0, 20.0);
}

// --- Property sweep: forecast stays within the series envelope ----

class HwEnvelopeSweep : public testing::TestWithParam<double>
{
};

TEST_P(HwEnvelopeSweep, ForecastBounded)
{
    double amplitude = GetParam();
    HoltWintersParams hp;
    hp.seasonLength = 16;
    HoltWintersPredictor p(hp);
    for (int i = 0; i < 400; ++i) {
        double v = 100.0 +
                   amplitude *
                       std::sin(2.0 * std::numbers::pi * i / 16.0);
        p.observe(v);
        if (i > 32) {
            EXPECT_GT(p.predict(), 100.0 - 2.0 * amplitude - 10.0);
            EXPECT_LT(p.predict(), 100.0 + 2.0 * amplitude + 10.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, HwEnvelopeSweep,
                         testing::Values(0.0, 10.0, 40.0, 80.0));

} // namespace
} // namespace heb

/** @file Graceful-degradation fallback ladder. */

#include <gtest/gtest.h>

#include "core/degradation.h"
#include "esd/bank_builder.h"

namespace heb {
namespace {

auto scFactory = []() { return makeScBank(28.8); };
auto baFactory = []() { return makeBatteryBank(67.2); };

SlotSensors
fullBankSensors()
{
    SlotSensors sensors;
    sensors.scUsableWh = scFactory()->usableEnergyWh();
    sensors.baUsableWh = baFactory()->usableEnergyWh();
    sensors.budgetW = 200.0;
    sensors.slotSeconds = 600.0;
    return sensors;
}

DegradationPolicyParams
slotParams()
{
    DegradationPolicyParams p;
    p.minRideThroughSeconds = 600.0;
    p.horizonSeconds = 1200.0;
    return p;
}

TEST(DegradationPolicy, TinyMismatchUntouched)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan plan;
    plan.rLambda = 1.0;
    plan.predictedMismatchW = 0.0;
    SlotSensors sensors = fullBankSensors();
    sensors.lastSlotPeakW = 150.0; // below budget: no mismatch
    SlotPlan out = policy.adapt(plan, sensors);
    EXPECT_EQ(policy.lastAction(), DegradationAction::None);
    EXPECT_EQ(policy.untouchedSlots(), 1u);
    EXPECT_DOUBLE_EQ(out.rLambda, 1.0);
    EXPECT_DOUBLE_EQ(out.shedFraction, 0.0);
}

TEST(DegradationPolicy, HealthyPlanUntouched)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan plan;
    plan.rLambda = 0.5;
    plan.chargeScFirst = true;
    plan.predictedMismatchW = 80.0;
    // A balanced 80 W split rides out well past one slot on full
    // banks (see ride_through_test).
    SlotPlan out = policy.adapt(plan, fullBankSensors());
    EXPECT_EQ(policy.lastAction(), DegradationAction::None);
    EXPECT_DOUBLE_EQ(out.rLambda, 0.5);
    EXPECT_TRUE(out.chargeScFirst);
    EXPECT_DOUBLE_EQ(out.shedFraction, 0.0);
}

TEST(DegradationPolicy, RebalancesAnOverloadedScBranch)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan plan;
    plan.rLambda = 1.0;
    plan.batteryBasePlanW = 120.0;
    plan.predictedMismatchW = 200.0;
    // All-SC at 200 W drains the 28.8 Wh bank in ~518 s < 600 s; an
    // even split brings the battery branch in and rides through.
    SlotPlan out = policy.adapt(plan, fullBankSensors());
    EXPECT_EQ(policy.lastAction(), DegradationAction::Rebalanced);
    EXPECT_EQ(policy.rebalancedSlots(), 1u);
    EXPECT_DOUBLE_EQ(out.rLambda, 0.5);
    // Fallback plans drop the battery-base split the scheme assumed.
    EXPECT_LT(out.batteryBasePlanW, 0.0);
    EXPECT_DOUBLE_EQ(out.shedFraction, 0.0);
}

TEST(DegradationPolicy, DeadBatteryBranchRidesOnSpillover)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan plan;
    plan.rLambda = 0.0; // all-battery plan...
    plan.predictedMismatchW = 100.0;
    SlotSensors sensors = fullBankSensors();
    sensors.baUsableWh = 0.0; // ...but the battery branch is dead
    SlotPlan out = policy.adapt(plan, sensors);
    // The estimator replays the real dispatch, whose two-way
    // spillover already routes the dead branch's share to the SC —
    // 28.8 Wh at 100 W outlasts the slot — so the policy correctly
    // leaves the plan alone instead of shedding.
    EXPECT_EQ(policy.lastAction(), DegradationAction::None);
    EXPECT_DOUBLE_EQ(out.rLambda, 0.0);
    EXPECT_DOUBLE_EQ(out.shedFraction, 0.0);
    EXPECT_EQ(policy.shedSlots(), 0u);
}

TEST(DegradationPolicy, ShedsWhenNoSplitSurvives)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan plan;
    plan.rLambda = 0.5;
    plan.predictedMismatchW = 50000.0; // beyond any split's power
    SlotPlan out = policy.adapt(plan, fullBankSensors());
    EXPECT_EQ(policy.lastAction(), DegradationAction::Shed);
    EXPECT_EQ(policy.shedSlots(), 1u);
    EXPECT_GT(out.shedFraction, 0.9);
    EXPECT_LE(out.shedFraction, 1.0);
}

TEST(DegradationPolicy, ShedFractionScalesWithDeficit)
{
    DegradationPolicy policy(scFactory, baFactory, slotParams());
    SlotPlan heavy;
    heavy.rLambda = 0.5;
    heavy.predictedMismatchW = 50000.0;
    SlotPlan lighter;
    lighter.rLambda = 0.5;
    lighter.predictedMismatchW = 600.0;
    double f_heavy =
        policy.adapt(heavy, fullBankSensors()).shedFraction;
    double f_lighter =
        policy.adapt(lighter, fullBankSensors()).shedFraction;
    EXPECT_EQ(policy.shedSlots(), 2u);
    EXPECT_GT(f_heavy, f_lighter);
}

TEST(DegradationPolicy, ActionNamesAreStable)
{
    EXPECT_STREQ(degradationActionName(DegradationAction::None),
                 "none");
    EXPECT_STREQ(degradationActionName(DegradationAction::Shed),
                 "shed");
}

TEST(DegradationPolicy, MissingFactoriesFatal)
{
    EXPECT_EXIT(DegradationPolicy(nullptr, baFactory),
                testing::ExitedWithCode(1), "factories");
}

TEST(DegradationPolicy, BadParamsFatal)
{
    DegradationPolicyParams p;
    p.minRideThroughSeconds = 0.0;
    EXPECT_EXIT(DegradationPolicy(scFactory, baFactory, p),
                testing::ExitedWithCode(1), "positive");
    DegradationPolicyParams q;
    q.horizonSeconds = q.minRideThroughSeconds / 2.0;
    EXPECT_EXIT(DegradationPolicy(scFactory, baFactory, q),
                testing::ExitedWithCode(1), "horizon");
}

} // namespace
} // namespace heb

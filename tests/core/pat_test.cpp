/** @file Power allocation table (Fig. 10 semantics). */

#include <gtest/gtest.h>

#include "core/pat.h"

namespace heb {
namespace {

PowerAllocationTable
seededTable()
{
    PowerAllocationTable t;
    t.seed(30.0, 50.0, 140.0, 0.7);
    t.seed(10.0, 50.0, 140.0, 0.4);
    t.seed(30.0, 20.0, 80.0, 0.9);
    return t;
}

TEST(Pat, ExactLookupAfterSeed)
{
    PowerAllocationTable t = seededTable();
    auto r = t.lookupExact(30.0, 50.0, 140.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(*r, 0.7);
}

TEST(Pat, ExactLookupQuantizes)
{
    PowerAllocationTable t = seededTable();
    // Keys round to the grid (5 / 10 / 20 steps by default).
    auto r = t.lookupExact(31.9, 47.0, 145.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(*r, 0.7);
}

TEST(Pat, ExactMissReturnsEmpty)
{
    PowerAllocationTable t = seededTable();
    EXPECT_FALSE(t.lookupExact(100.0, 100.0, 500.0).has_value());
}

TEST(Pat, SimilarFindsNearestNeighbour)
{
    PowerAllocationTable t = seededTable();
    // Slightly off every key: nearest is the (30, 50, 140) entry.
    auto r = t.lookupSimilar(27.0, 55.0, 150.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(*r, 0.7);
}

TEST(Pat, SimilarOnEmptyTableIsEmpty)
{
    PowerAllocationTable t;
    EXPECT_FALSE(t.lookupSimilar(1.0, 1.0, 1.0).has_value());
    EXPECT_FALSE(t.lookup(1.0, 1.0, 1.0).has_value());
}

TEST(Pat, LookupPrefersExact)
{
    PowerAllocationTable t = seededTable();
    auto r = t.lookup(10.0, 50.0, 140.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(*r, 0.4);
}

TEST(Pat, SeedOverwritesExistingCell)
{
    PowerAllocationTable t = seededTable();
    t.seed(30.0, 50.0, 140.0, 0.55);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(*t.lookupExact(30.0, 50.0, 140.0), 0.55);
}

TEST(Pat, RecordOutcomeAddsNewEntry)
{
    PowerAllocationTable t;
    t.recordOutcome(30.0, 50.0, 140.0, 0.66, 20.0, 45.0);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(*t.lookupExact(30.0, 50.0, 140.0), 0.66);
}

TEST(Pat, BatteryDeclinedFasterRaisesR)
{
    // SC/BA ratio grew over the slot -> battery drained relatively
    // faster -> shift load toward SCs (Fig. 10 line 17-18).
    PowerAllocationTable t = seededTable();
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    EXPECT_NEAR(*t.lookupExact(30.0, 50.0, 140.0), 0.71, 1e-9);
}

TEST(Pat, ScDeclinedFasterLowersR)
{
    PowerAllocationTable t = seededTable();
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 5.0, 48.0);
    EXPECT_NEAR(*t.lookupExact(30.0, 50.0, 140.0), 0.69, 1e-9);
}

TEST(Pat, BalancedDeclineLeavesR)
{
    PowerAllocationTable t = seededTable();
    // Equal relative decline: ratio preserved.
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 15.0, 25.0);
    EXPECT_NEAR(*t.lookupExact(30.0, 50.0, 140.0), 0.7, 1e-9);
}

TEST(Pat, DrainedBatteryForcesRUp)
{
    PowerAllocationTable t = seededTable();
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 10.0, 0.0);
    EXPECT_NEAR(*t.lookupExact(30.0, 50.0, 140.0), 0.71, 1e-9);
}

TEST(Pat, RClampedToUnitInterval)
{
    PowerAllocationTable t;
    t.seed(30.0, 50.0, 140.0, 1.0);
    for (int i = 0; i < 10; ++i)
        t.recordOutcome(30.0, 50.0, 140.0, 1.0, 25.0, 20.0);
    EXPECT_LE(*t.lookupExact(30.0, 50.0, 140.0), 1.0);
}

TEST(Pat, UpdatesCounted)
{
    PowerAllocationTable t = seededTable();
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    for (const auto &e : t.entries()) {
        if (e.scWh == 30.0 && e.baWh == 50.0 &&
            e.mismatchW == 140.0) {
            EXPECT_EQ(e.updates, 2u);
        }
    }
}

TEST(Pat, RequantizeAveragesCells)
{
    PowerAllocationTable t;
    t.seed(10.0, 50.0, 100.0, 0.4);
    t.seed(15.0, 50.0, 100.0, 0.8);
    PatGrid coarse;
    coarse.scStepWh = 40.0;
    coarse.baStepWh = 40.0;
    coarse.pmStepW = 80.0;
    PowerAllocationTable c = t.requantized(coarse);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_NEAR(c.entries()[0].rLambda, 0.6, 1e-9);
}

TEST(Pat, RequantizeKeepsDistinctCells)
{
    PowerAllocationTable t;
    t.seed(10.0, 50.0, 100.0, 0.4);
    t.seed(200.0, 50.0, 100.0, 0.8);
    PatGrid coarse;
    coarse.scStepWh = 40.0;
    coarse.baStepWh = 40.0;
    coarse.pmStepW = 80.0;
    EXPECT_EQ(t.requantized(coarse).size(), 2u);
}

TEST(Pat, InvalidGridRejected)
{
    PatGrid g;
    g.pmStepW = 0.0;
    EXPECT_EXIT(PowerAllocationTable(g, 0.01),
                testing::ExitedWithCode(1), "grid");
    EXPECT_EXIT(PowerAllocationTable(PatGrid{}, 0.0),
                testing::ExitedWithCode(1), "delta_r");
}

} // namespace
} // namespace heb

/**
 * @file
 * Predictor-quality properties across all eight workload demand
 * series: after warm-up, Holt-Winters must not lose to the naive
 * last-value predictor on periodic datacenter load (the premise
 * behind HEB-D > HEB-F).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "dc/cluster.h"
#include "util/statistics.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

/** Per-slot peak series of a workload's cluster demand (W). */
std::vector<double>
slotPeaks(const std::string &name, std::size_t slots,
          double slot_s = 600.0)
{
    auto w = makeWorkload(name);
    Cluster cluster(6);
    for (std::size_t s = 0; s < 6; ++s) {
        cluster.server(s).setFrequency(
            w->peakClass() == PeakClass::Small
                ? Server::Frequency::Low
                : Server::Frequency::High);
    }
    std::vector<double> peaks;
    std::vector<double> util(6, 0.0);
    for (std::size_t slot = 0; slot < slots; ++slot) {
        double peak = 0.0;
        for (double t = 0.0; t < slot_s; t += 10.0) {
            double now = static_cast<double>(slot) * slot_s + t;
            for (std::size_t s = 0; s < 6; ++s)
                util[s] = w->utilization(s, now);
            peak = std::max(peak, cluster.totalPowerW(util, now));
        }
        peaks.push_back(peak);
    }
    return peaks;
}

class PredictorQuality : public testing::TestWithParam<std::string>
{
};

TEST_P(PredictorQuality, HoltWintersAtLeastMatchesNaiveAfterWarmup)
{
    // Three days of slots; score day 2-3 only (day 1 is warm-up).
    std::vector<double> peaks = slotPeaks(GetParam(), 3 * 144);

    HoltWintersPredictor hw;
    LastValuePredictor naive;
    std::vector<double> actual, hw_pred, nv_pred;
    for (std::size_t i = 0; i < peaks.size(); ++i) {
        if (i >= 144) {
            actual.push_back(peaks[i]);
            hw_pred.push_back(hw.predict());
            nv_pred.push_back(naive.predict());
        }
        hw.observe(peaks[i]);
        naive.observe(peaks[i]);
    }
    double hw_err = meanAbsolutePercentageError(actual, hw_pred);
    double nv_err = meanAbsolutePercentageError(actual, nv_pred);
    // Allow a small tolerance: jittered series can favour naive by a
    // hair, but HW must never be categorically worse.
    EXPECT_LE(hw_err, nv_err * 1.15 + 0.5)
        << "HW " << hw_err << "% vs naive " << nv_err << "%";
}

TEST_P(PredictorQuality, ForecastStaysInPhysicalRange)
{
    std::vector<double> peaks = slotPeaks(GetParam(), 2 * 144);
    HoltWintersPredictor hw;
    for (std::size_t i = 0; i < peaks.size(); ++i) {
        hw.observe(peaks[i]);
        if (i > 10) {
            EXPECT_GT(hw.predict(), 0.0);
            EXPECT_LT(hw.predict(), 600.0); // well above nameplate
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PredictorQuality,
                         testing::Values("PR", "WC", "DA", "WS",
                                         "MS", "DFS", "HB", "TS"));

} // namespace
} // namespace heb

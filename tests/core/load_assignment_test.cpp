/** @file Mismatch/charge dispatch between branches. */

#include <gtest/gtest.h>

#include "core/load_assignment.h"
#include "esd/battery.h"
#include "esd/supercapacitor.h"

namespace heb {
namespace {

struct Rig
{
    Supercapacitor sc{ScParams::maxwellSeriesBank()};
    Battery ba{BatteryParams::prototypeLeadAcid()};
};

TEST(Dispatch, ZeroMismatchRestsBoth)
{
    Rig rig;
    rig.ba.discharge(80.0, 300.0); // tire the battery
    double y1 = rig.ba.availableChargeAh();
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 0.0, 0.5,
                                          60.0);
    EXPECT_DOUBLE_EQ(res.totalW(), 0.0);
    EXPECT_GT(rig.ba.availableChargeAh(), y1); // recovered
}

TEST(Dispatch, FullScRatio)
{
    Rig rig;
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 100.0, 1.0,
                                          1.0);
    EXPECT_NEAR(res.scPowerW, 100.0, 1e-6);
    EXPECT_NEAR(res.baPowerW, 0.0, 1e-9);
    EXPECT_NEAR(res.unservedW, 0.0, 1e-6);
}

TEST(Dispatch, FullBatteryRatioWithinCapability)
{
    Rig rig;
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 30.0, 0.0,
                                          1.0);
    EXPECT_NEAR(res.baPowerW, 30.0, 1e-6);
    EXPECT_NEAR(res.scPowerW, 0.0, 1e-9);
}

TEST(Dispatch, SpilloverToScWhenBatteryCapped)
{
    Rig rig;
    // Far beyond the battery's 1 C capability.
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 300.0, 0.0,
                                          1.0);
    EXPECT_GT(res.scPowerW, 150.0);
    EXPECT_GT(res.baPowerW, 10.0);
    EXPECT_NEAR(res.totalW(), 300.0, 1.0);
}

TEST(Dispatch, SpilloverToBatteryWhenScEmpty)
{
    Rig rig;
    rig.sc.setSoc(0.0);
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 50.0, 1.0,
                                          1.0);
    EXPECT_NEAR(res.scPowerW, 0.0, 1e-6);
    EXPECT_NEAR(res.baPowerW, 50.0, 1e-6);
}

TEST(Dispatch, UnservedWhenBothExhausted)
{
    Rig rig;
    rig.sc.setSoc(0.0);
    rig.ba.setSoc(0.2); // at the DoD floor
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 100.0, 0.5,
                                          1.0);
    EXPECT_GT(res.unservedW, 90.0);
}

TEST(Dispatch, BatteryAsBaseIdlesScDuringRamp)
{
    Rig rig;
    // Planned PM 140, r = 0.6 -> battery base 56 W. A 40 W ramp
    // tick must ride entirely on the battery.
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 40.0, 0.6,
                                          1.0, 140.0);
    EXPECT_NEAR(res.baPowerW, 40.0, 1e-6);
    EXPECT_NEAR(res.scPowerW, 0.0, 1e-9);
}

TEST(Dispatch, BatteryAsBaseSplitsAtCrest)
{
    Rig rig;
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 140.0, 0.6,
                                          1.0, 140.0);
    EXPECT_NEAR(res.baPowerW, 56.0, 1.0);
    EXPECT_NEAR(res.scPowerW, 84.0, 1.0);
}

TEST(Dispatch, ProportionalWhenNoPlan)
{
    Rig rig;
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 40.0, 0.6,
                                          1.0);
    EXPECT_NEAR(res.scPowerW, 24.0, 0.5);
    EXPECT_NEAR(res.baPowerW, 16.0, 0.5);
}

TEST(Dispatch, RatioClamped)
{
    Rig rig;
    DispatchResult res = dispatchMismatch(rig.sc, rig.ba, 50.0, 7.0,
                                          1.0);
    EXPECT_NEAR(res.scPowerW, 50.0, 1e-6);
}

TEST(Charge, ParallelFillUsesBatteryWindowAndScBulk)
{
    Rig rig;
    rig.sc.setSoc(0.3);
    rig.ba.setSoc(0.3);
    ChargeResult res = dispatchCharge(rig.sc, rig.ba, 200.0, true,
                                      1.0);
    // Battery trickles at its small ceiling; SC takes the bulk.
    EXPECT_GT(res.baPowerW, 1.0);
    EXPECT_GT(res.scPowerW, res.baPowerW);
    EXPECT_NEAR(res.totalW(), 200.0, 1.0);
}

TEST(Charge, BatteryPriorityFill)
{
    Rig rig;
    rig.sc.setSoc(0.3);
    rig.ba.setSoc(0.3);
    ChargeResult res = dispatchCharge(rig.sc, rig.ba, 10.0, false,
                                      1.0);
    // Small surplus goes to the battery alone.
    EXPECT_NEAR(res.baPowerW, 10.0, 0.5);
    EXPECT_NEAR(res.scPowerW, 0.0, 0.5);
}

TEST(Charge, FullDevicesAbsorbNothing)
{
    Rig rig;
    ChargeResult res = dispatchCharge(rig.sc, rig.ba, 100.0, true,
                                      1.0);
    EXPECT_NEAR(res.totalW(), 0.0, 1e-3);
}

TEST(Charge, ZeroSurplusRests)
{
    Rig rig;
    ChargeResult res = dispatchCharge(rig.sc, rig.ba, 0.0, true, 1.0);
    EXPECT_DOUBLE_EQ(res.totalW(), 0.0);
}

TEST(ServersOnSc, QuantizesToWholeServers)
{
    EXPECT_EQ(serversOnSc(0.0, 6), 0u);
    EXPECT_EQ(serversOnSc(1.0, 6), 6u);
    EXPECT_EQ(serversOnSc(0.5, 6), 3u);
    EXPECT_EQ(serversOnSc(0.24, 6), 1u);
    EXPECT_EQ(serversOnSc(0.26, 6), 2u);
    EXPECT_EQ(serversOnSc(1.7, 6), 6u); // clamped
}

// --- Property sweep: dispatch never over-serves and conserves ----

class DispatchRatioSweep : public testing::TestWithParam<double>
{
};

TEST_P(DispatchRatioSweep, ServedNeverExceedsMismatch)
{
    Rig rig;
    double r = GetParam();
    for (int i = 0; i < 300; ++i) {
        DispatchResult res =
            dispatchMismatch(rig.sc, rig.ba, 120.0, r, 1.0);
        EXPECT_LE(res.totalW(), 120.0 + 1e-6);
        EXPECT_GE(res.unservedW, 0.0);
        EXPECT_NEAR(res.totalW() + res.unservedW, 120.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Ratios, DispatchRatioSweep,
                         testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

} // namespace
} // namespace heb

/** @file Ride-through ("time remaining") estimation. */

#include <gtest/gtest.h>

#include "core/ride_through.h"
#include "esd/bank_builder.h"

namespace heb {
namespace {

auto scFactory = []() { return makeScBank(28.8); };
auto baFactory = []() { return makeBatteryBank(67.2); };

TEST(RideThrough, FullBankCarriesModestLoad)
{
    double t = estimateRideThroughSeconds(scFactory, baFactory, 1.0,
                                          1.0, 80.0);
    // At the default r=1 the SC carries all 80 W: 28.8 Wh lasts
    // ~1296 s, after which the 70 W-rated battery cannot take over
    // the full load alone.
    EXPECT_GT(t, 1000.0);
    EXPECT_LT(t, 1800.0);

    RideThroughParams balanced;
    balanced.rLambda = 0.5;
    double t_bal = estimateRideThroughSeconds(
        scFactory, baFactory, 1.0, 1.0, 80.0, balanced);
    // A balanced split uses both stores: roughly the combined
    // energy at 80 W.
    EXPECT_GT(t_bal, 2400.0);
    EXPECT_LT(t_bal, 7200.0);
}

TEST(RideThrough, HeavierLoadShorter)
{
    double t1 = estimateRideThroughSeconds(scFactory, baFactory, 1.0,
                                           1.0, 80.0);
    double t2 = estimateRideThroughSeconds(scFactory, baFactory, 1.0,
                                           1.0, 160.0);
    EXPECT_GT(t1, 1.5 * t2);
}

TEST(RideThrough, LowerSocShorter)
{
    double full = estimateRideThroughSeconds(scFactory, baFactory,
                                             1.0, 1.0, 100.0);
    double half = estimateRideThroughSeconds(scFactory, baFactory,
                                             0.5, 0.5, 100.0);
    EXPECT_GT(full, half);
}

TEST(RideThrough, ZeroLoadIsHorizon)
{
    RideThroughParams p;
    EXPECT_DOUBLE_EQ(estimateRideThroughSeconds(scFactory, baFactory,
                                                1.0, 1.0, 0.0),
                     p.horizonSeconds);
}

TEST(RideThrough, ImpossibleLoadIsZero)
{
    // Far beyond the combined power capability: fails immediately.
    double t = estimateRideThroughSeconds(scFactory, baFactory, 1.0,
                                          1.0, 50000.0);
    EXPECT_LT(t, 10.0);
}

TEST(RideThrough, BalancedSplitOutlastsAllSc)
{
    RideThroughParams all_sc;
    all_sc.rLambda = 1.0;
    RideThroughParams balanced;
    balanced.rLambda = 0.6;
    double t_sc = estimateRideThroughSeconds(
        scFactory, baFactory, 1.0, 1.0, 150.0, all_sc);
    double t_bal = estimateRideThroughSeconds(
        scFactory, baFactory, 1.0, 1.0, 150.0, balanced);
    // With battery-as-base dispatch, both spill intelligently, so
    // balanced >= SC-heavy (never worse).
    EXPECT_GE(t_bal, t_sc * 0.95);
}

TEST(RideThrough, SurvivedHorizonFlagSetWhenBankOutlastsHorizon)
{
    // A short horizon the full bank easily covers: the estimate is
    // the horizon itself, flagged as a lower bound, not a failure
    // that happens to land there.
    RideThroughParams p;
    p.rLambda = 0.5;
    p.horizonSeconds = 300.0;
    RideThroughEstimate est = estimateRideThrough(
        scFactory, baFactory, 1.0, 1.0, 80.0, p);
    EXPECT_TRUE(est.survivedHorizon);
    EXPECT_DOUBLE_EQ(est.seconds, 300.0);
}

TEST(RideThrough, SurvivedHorizonFlagClearOnMeasuredFailure)
{
    // All-SC at 80 W dies around 1300 s, well inside the default 8 h
    // horizon: a measured failure, not a horizon cap.
    RideThroughEstimate est = estimateRideThrough(
        scFactory, baFactory, 1.0, 1.0, 80.0);
    EXPECT_FALSE(est.survivedHorizon);
    EXPECT_GT(est.seconds, 1000.0);
    EXPECT_LT(est.seconds, 1800.0);
}

TEST(RideThrough, ZeroLoadSurvivesHorizon)
{
    RideThroughEstimate est = estimateRideThrough(
        scFactory, baFactory, 1.0, 1.0, 0.0);
    EXPECT_TRUE(est.survivedHorizon);
}

TEST(RideThrough, LegacyScalarMatchesStructSeconds)
{
    RideThroughParams p;
    p.rLambda = 0.7;
    EXPECT_DOUBLE_EQ(
        estimateRideThroughSeconds(scFactory, baFactory, 1.0, 1.0,
                                   120.0, p),
        estimateRideThrough(scFactory, baFactory, 1.0, 1.0, 120.0, p)
            .seconds);
}

TEST(RideThrough, MissingFactoriesFatal)
{
    EXPECT_EXIT(estimateRideThroughSeconds(nullptr, baFactory, 1.0,
                                           1.0, 10.0),
                testing::ExitedWithCode(1), "factories");
}

} // namespace
} // namespace heb

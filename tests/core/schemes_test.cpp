/** @file The six Table 2 schemes' planning behaviour. */

#include <gtest/gtest.h>

#include "core/schemes.h"

namespace heb {
namespace {

SlotSensors
typicalSensors()
{
    SlotSensors s;
    s.scUsableWh = 28.8;
    s.baUsableWh = 53.0;
    s.scMaxPowerW = 400.0;
    s.baMaxPowerW = 70.0;
    s.lastSlotPeakW = 400.0;
    s.lastSlotValleyW = 220.0;
    s.budgetW = 260.0;
    s.slotSeconds = 600.0;
    return s;
}

TEST(Schemes, FactoryNames)
{
    for (SchemeKind kind : allSchemeKinds()) {
        auto scheme = makeScheme(kind);
        EXPECT_EQ(scheme->name(), schemeKindName(kind));
    }
    EXPECT_EQ(allSchemeKinds().size(), 6u);
}

TEST(Schemes, BaOnlyIsHomogeneous)
{
    auto s = makeScheme(SchemeKind::BaOnly);
    EXPECT_FALSE(s->usesHybridBuffers());
    SlotPlan plan = s->planSlot(typicalSensors());
    EXPECT_DOUBLE_EQ(plan.rLambda, 0.0);
    EXPECT_FALSE(plan.chargeScFirst);
}

TEST(Schemes, BaFirstPlansBatteryLead)
{
    auto s = makeScheme(SchemeKind::BaFirst);
    EXPECT_TRUE(s->usesHybridBuffers());
    SlotPlan plan = s->planSlot(typicalSensors());
    EXPECT_DOUBLE_EQ(plan.rLambda, 0.0);
    EXPECT_FALSE(plan.chargeScFirst);
    EXPECT_LE(plan.batteryBasePlanW, 0.0); // proportional dispatch
}

TEST(Schemes, ScFirstPlansScLead)
{
    auto s = makeScheme(SchemeKind::ScFirst);
    SlotPlan plan = s->planSlot(typicalSensors());
    EXPECT_DOUBLE_EQ(plan.rLambda, 1.0);
    EXPECT_TRUE(plan.chargeScFirst);
}

TEST(Schemes, HebSmallPeakGoesAllSc)
{
    auto s = makeScheme(SchemeKind::HebD);
    SlotSensors sensors = typicalSensors();
    sensors.lastSlotPeakW = 280.0;
    sensors.lastSlotValleyW = 240.0; // PM 40 < 60 threshold
    SlotPlan plan = s->planSlot(sensors);
    EXPECT_EQ(plan.predictedClass, PeakClass::Small);
    EXPECT_DOUBLE_EQ(plan.rLambda, 1.0);
    EXPECT_TRUE(plan.chargeScFirst);
}

TEST(Schemes, HebLargePeakUsesJointDispatch)
{
    auto s = makeScheme(SchemeKind::HebD);
    SlotPlan plan = s->planSlot(typicalSensors()); // PM 180
    EXPECT_EQ(plan.predictedClass, PeakClass::Large);
    EXPECT_GT(plan.batteryBasePlanW, 0.0);
    EXPECT_GT(plan.rLambda, 0.0);
    EXPECT_LE(plan.rLambda, 1.0);
}

TEST(Schemes, HebRespectsBatteryPowerFloor)
{
    // PM far above the battery branch capability: r must stay above
    // the feasibility floor even if the table says otherwise.
    PowerAllocationTable pat;
    pat.seed(28.8, 53.0, 180.0, 0.0); // pathological seed
    HebSchemeConfig cfg;
    HebScheme s("HEB-D", cfg, pat);
    SlotPlan plan = s.planSlot(typicalSensors());
    double pm = plan.predictedMismatchW;
    double floor = (pm - typicalSensors().baMaxPowerW) / pm;
    EXPECT_GE(plan.rLambda, floor - 1e-9);
}

TEST(Schemes, HebConservativeEnvelopeUsesNaiveWhenModelCold)
{
    auto s = makeScheme(SchemeKind::HebD);
    SlotSensors sensors = typicalSensors();
    SlotPlan plan = s->planSlot(sensors);
    // Cold model: falls back to last slot's 180 W mismatch.
    EXPECT_NEAR(plan.predictedMismatchW, 180.0, 1e-9);
}

TEST(Schemes, HebLearnsFromOutcomes)
{
    HebSchemeConfig cfg;
    cfg.dynamicPatUpdates = true;
    HebScheme s("HEB-D", cfg);
    SlotSensors sensors = typicalSensors();
    SlotPlan plan = s.planSlot(sensors);

    SlotOutcome outcome;
    outcome.scStartWh = sensors.scUsableWh;
    outcome.baStartWh = sensors.baUsableWh;
    outcome.scEndWh = 10.0;
    outcome.baEndWh = 50.0;
    outcome.actualPeakW = 400.0;
    outcome.actualValleyW = 220.0;
    outcome.rLambdaUsed = plan.rLambda;
    s.finishSlot(outcome);
    EXPECT_GE(s.pat().size(), 1u);
}

TEST(Schemes, HebStaticSkipsPatUpdates)
{
    HebSchemeConfig cfg;
    cfg.dynamicPatUpdates = false;
    HebScheme s("HEB-S", cfg);
    SlotSensors sensors = typicalSensors();
    s.planSlot(sensors);
    SlotOutcome outcome;
    outcome.scStartWh = sensors.scUsableWh;
    outcome.baStartWh = sensors.baUsableWh;
    outcome.scEndWh = 5.0;
    outcome.baEndWh = 50.0;
    outcome.actualPeakW = 400.0;
    outcome.actualValleyW = 220.0;
    s.finishSlot(outcome);
    EXPECT_EQ(s.pat().size(), 0u);
}

TEST(Schemes, HebFUsesNaivePrediction)
{
    auto s = makeScheme(SchemeKind::HebF);
    auto *heb = dynamic_cast<HebScheme *>(s.get());
    ASSERT_NE(heb, nullptr);
    EXPECT_FALSE(heb->config().holtWintersPrediction);
    EXPECT_TRUE(heb->config().dynamicPatUpdates);
}

TEST(Schemes, HebSGetsCoarserGridFromSeed)
{
    HebSchemeConfig cfg;
    PowerAllocationTable seed(cfg.patGrid, cfg.deltaR);
    seed.seed(10.0, 50.0, 100.0, 0.4);
    seed.seed(15.0, 50.0, 100.0, 0.8);
    auto s = makeScheme(SchemeKind::HebS, cfg, &seed);
    auto *heb = dynamic_cast<HebScheme *>(s.get());
    ASSERT_NE(heb, nullptr);
    // Requantized onto a 4x coarser grid: the two cells merge.
    EXPECT_EQ(heb->pat().size(), 1u);
}

TEST(Schemes, PrioritySchemesIgnoreOutcomes)
{
    auto s = makeScheme(SchemeKind::ScFirst);
    SlotOutcome outcome;
    s->finishSlot(outcome); // must be a harmless no-op
    SUCCEED();
}

} // namespace
} // namespace heb

/** @file PAT save/load round trip. */

#include <cstdio>

#include <gtest/gtest.h>

#include "core/pat.h"

namespace heb {
namespace {

class PatPersistenceTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = testing::TempDir() + "heb_pat_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(PatPersistenceTest, RoundTripPreservesEntries)
{
    PowerAllocationTable t;
    t.seed(30.0, 50.0, 140.0, 0.7);
    t.seed(10.0, 50.0, 160.0, 0.4);
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0); // r -> 0.71
    t.saveCsv(path_);

    PowerAllocationTable loaded =
        PowerAllocationTable::loadCsv(path_);
    EXPECT_EQ(loaded.size(), 2u);
    auto r = loaded.lookupExact(30.0, 50.0, 140.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 0.71, 1e-9);
}

TEST_F(PatPersistenceTest, UpdatesCountSurvives)
{
    PowerAllocationTable t;
    t.seed(30.0, 50.0, 140.0, 0.7);
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    t.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    t.saveCsv(path_);
    PowerAllocationTable loaded =
        PowerAllocationTable::loadCsv(path_);
    EXPECT_EQ(loaded.entries()[0].updates, 2u);
}

TEST_F(PatPersistenceTest, EmptyTableRoundTrips)
{
    PowerAllocationTable t;
    t.saveCsv(path_);
    PowerAllocationTable loaded =
        PowerAllocationTable::loadCsv(path_);
    EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(PatPersistenceTest, LoadedTableKeepsLearning)
{
    PowerAllocationTable t;
    t.seed(30.0, 50.0, 140.0, 0.7);
    t.saveCsv(path_);
    PowerAllocationTable loaded =
        PowerAllocationTable::loadCsv(path_);
    loaded.recordOutcome(30.0, 50.0, 140.0, 0.7, 25.0, 20.0);
    EXPECT_NEAR(*loaded.lookupExact(30.0, 50.0, 140.0), 0.71, 1e-9);
}

TEST(PatPersistence, MissingFileFatal)
{
    EXPECT_EXIT(
        PowerAllocationTable::loadCsv("/nonexistent/pat.csv"),
        testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace heb

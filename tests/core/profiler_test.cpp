/** @file Pilot profiling (Fig. 6 races and PAT seeding). */

#include <gtest/gtest.h>

#include "core/profiler.h"
#include "esd/bank_builder.h"

namespace heb {
namespace {

BufferProfiler
prototypeProfiler(ProfilerConfig cfg = {})
{
    return BufferProfiler(
        []() { return makeScBank(28.8); },
        []() { return makeBatteryBank(67.2); }, cfg);
}

TEST(Profiler, EnduranceRaceRunsOut)
{
    BufferProfiler p = prototypeProfiler();
    double t = p.dischargeRuntime(1.0, 1.0, 140.0, 0.5);
    EXPECT_GT(t, 60.0);
    EXPECT_LT(t, 4.0 * 3600.0);
}

TEST(Profiler, MoreMismatchDiesSooner)
{
    BufferProfiler p = prototypeProfiler();
    EXPECT_GT(p.dischargeRuntime(1.0, 1.0, 100.0, 0.6),
              p.dischargeRuntime(1.0, 1.0, 200.0, 0.6));
}

TEST(Profiler, LowerSocDiesSooner)
{
    BufferProfiler p = prototypeProfiler();
    EXPECT_GT(p.dischargeRuntime(1.0, 1.0, 140.0, 0.6),
              p.dischargeRuntime(0.4, 0.4, 140.0, 0.6));
}

TEST(Profiler, Fig6InteriorOptimum)
{
    // The paper's Fig. 6 headline: for a mismatch the battery cannot
    // carry alone and the SC cannot sustain alone, the best split is
    // interior.
    BufferProfiler p = prototypeProfiler();
    RuntimeProfile prof = p.profileScenario(1.0, 1.0, 150.0);
    ASSERT_EQ(prof.ratios.size(), 11u);
    double best = prof.bestRatio();
    EXPECT_GT(best, 0.0);
    EXPECT_LT(best, 1.0);
    // Interior beats both extremes.
    EXPECT_GT(prof.bestRuntime(), prof.runtimeSeconds.front());
    EXPECT_GT(prof.bestRuntime(), prof.runtimeSeconds.back());
}

TEST(Profiler, HeavyScAssignmentCutsRuntime)
{
    // Paper: assigning heavy load on SCs decreases uptime ~25 %.
    BufferProfiler p = prototypeProfiler();
    RuntimeProfile prof = p.profileScenario(1.0, 1.0, 150.0);
    EXPECT_LT(prof.runtimeSeconds.back(),
              prof.bestRuntime() * 0.9);
}

TEST(Profiler, CyclicUnservedZeroWhenFeasible)
{
    ProfilerConfig cfg;
    cfg.peakDurationS = 600.0;
    cfg.valleyDurationS = 3000.0;
    cfg.valleyChargeW = 45.0;
    BufferProfiler p = prototypeProfiler(cfg);
    // Small mismatch: trivially feasible at r = 1.
    EXPECT_NEAR(p.cyclicUnservedWh(1.0, 1.0, 40.0, 1.0), 0.0, 1e-9);
}

TEST(Profiler, CyclicPenalizesInfeasibleRatio)
{
    ProfilerConfig cfg;
    cfg.peakDurationS = 900.0;
    BufferProfiler p = prototypeProfiler(cfg);
    // r = 1: SC alone cannot hold 140 W for 900 s (28.8 Wh < 35 Wh).
    EXPECT_GT(p.cyclicUnservedWh(1.0, 1.0, 140.0, 1.0), 1.0);
    // The cyclic optimum must do better.
    double best = p.bestCyclicRatio(1.0, 1.0, 140.0);
    EXPECT_LT(p.cyclicUnservedWh(1.0, 1.0, 140.0, best), 1.0);
}

TEST(Profiler, BestCyclicRatioPrefersScOnTies)
{
    BufferProfiler p = prototypeProfiler();
    // Tiny mismatch: every ratio serves fully; tie-break goes SC.
    EXPECT_DOUBLE_EQ(p.bestCyclicRatio(1.0, 1.0, 20.0), 1.0);
}

TEST(Profiler, SeedTablePopulatesGrid)
{
    PowerAllocationTable table;
    ProfilerConfig cfg;
    cfg.ratioSteps = 5;
    cfg.cycles = 1;
    BufferProfiler p = prototypeProfiler(cfg);
    p.seedTable(table, {0.5, 1.0}, {1.0}, {80.0, 160.0});
    EXPECT_EQ(table.size(), 4u);
    for (const auto &e : table.entries()) {
        EXPECT_GE(e.rLambda, 0.0);
        EXPECT_LE(e.rLambda, 1.0);
    }
}

TEST(Profiler, InvalidConfigRejected)
{
    ProfilerConfig cfg;
    cfg.ratioSteps = 1;
    EXPECT_EXIT(prototypeProfiler(cfg), testing::ExitedWithCode(1),
                "ratio");
    EXPECT_EXIT(BufferProfiler(nullptr, nullptr),
                testing::ExitedWithCode(1), "factories");
}

} // namespace
} // namespace heb

#include "util/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace heb {
namespace {

namespace fs = std::filesystem;

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

TEST(AtomicFile, WritesNewFile)
{
    fs::path dir = fs::path(::testing::TempDir()) / "heb_atomic_new";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = (dir / "out.txt").string();

    ASSERT_TRUE(writeFileAtomic(path, "hello\nworld\n"));
    EXPECT_EQ(readAll(path), "hello\nworld\n");
}

TEST(AtomicFile, ReplacesExistingFileCompletely)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / "heb_atomic_replace";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = (dir / "out.txt").string();

    ASSERT_TRUE(writeFileAtomic(
        path, "a much longer first version of the content\n"));
    ASSERT_TRUE(writeFileAtomic(path, "short\n"));
    // Full replacement: no tail of the longer predecessor survives.
    EXPECT_EQ(readAll(path), "short\n");
}

TEST(AtomicFile, LeavesNoTemporaryBehind)
{
    fs::path dir = fs::path(::testing::TempDir()) / "heb_atomic_tmp";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = (dir / "out.txt").string();

    ASSERT_TRUE(writeFileAtomic(path, "payload"));
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(AtomicFile, FailsCleanlyWhenDirectoryMissing)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / "heb_atomic_missing";
    fs::remove_all(dir);
    std::string path = (dir / "sub" / "out.txt").string();

    EXPECT_FALSE(writeFileAtomic(path, "payload"));
    EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFile, HandlesEmptyAndBinaryContent)
{
    fs::path dir = fs::path(::testing::TempDir()) / "heb_atomic_bin";
    fs::remove_all(dir);
    fs::create_directories(dir);

    std::string empty_path = (dir / "empty").string();
    ASSERT_TRUE(writeFileAtomic(empty_path, ""));
    EXPECT_EQ(readAll(empty_path), "");

    std::string bin_path = (dir / "bin").string();
    std::string payload("\x00\x01\xff\n\x00mid-null", 12);
    ASSERT_TRUE(writeFileAtomic(bin_path, payload));
    EXPECT_EQ(readAll(bin_path), payload);
}

} // namespace
} // namespace heb

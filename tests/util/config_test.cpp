/** @file key=value configuration parsing. */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/config.h"

namespace heb {
namespace {

TEST(Config, ParsesBasicPairs)
{
    Config c = Config::fromString("a = 1\nb=hello\n c  =  2.5 ");
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.getString("b"), "hello");
    EXPECT_EQ(c.getInt("a"), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("c"), 2.5);
}

TEST(Config, CommentsAndBlankLines)
{
    Config c = Config::fromString(
        "# full comment\n\nx = 5 # trailing comment\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.getInt("x"), 5);
}

TEST(Config, Booleans)
{
    Config c = Config::fromString(
        "t1=true\nt2=1\nt3=yes\nf1=false\nf2=0\nf3=no");
    EXPECT_TRUE(c.getBool("t1"));
    EXPECT_TRUE(c.getBool("t2"));
    EXPECT_TRUE(c.getBool("t3"));
    EXPECT_FALSE(c.getBool("f1"));
    EXPECT_FALSE(c.getBool("f2"));
    EXPECT_FALSE(c.getBool("f3"));
}

TEST(Config, Defaults)
{
    Config c = Config::fromString("x = 5");
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(c.getString("missing", "d"), "d");
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_EQ(c.getInt("x", 7), 5);
}

TEST(Config, MissingKeyFatal)
{
    Config c = Config::fromString("");
    EXPECT_EXIT((void)c.getString("nope"),
                testing::ExitedWithCode(1), "missing key");
}

TEST(Config, BadNumberFatal)
{
    Config c = Config::fromString("x = abc\ny = 1.5z");
    EXPECT_EXIT((void)c.getDouble("x"), testing::ExitedWithCode(1),
                "not numeric");
    EXPECT_EXIT((void)c.getInt("y"), testing::ExitedWithCode(1),
                "not integral");
}

TEST(Config, BadBoolFatal)
{
    Config c = Config::fromString("x = maybe");
    EXPECT_EXIT((void)c.getBool("x"), testing::ExitedWithCode(1),
                "not a boolean");
}

TEST(Config, MalformedLineFatal)
{
    EXPECT_EXIT(Config::fromString("just a line"),
                testing::ExitedWithCode(1), "no '='");
    EXPECT_EXIT(Config::fromString("= value"),
                testing::ExitedWithCode(1), "empty key");
}

TEST(Config, SetOverrides)
{
    Config c = Config::fromString("x = 1");
    c.set("x", "2");
    c.set("y", "3");
    EXPECT_EQ(c.getInt("x"), 2);
    EXPECT_EQ(c.getInt("y"), 3);
}

TEST(Config, FromFileRoundTrip)
{
    std::string path = testing::TempDir() + "heb_config_test.cfg";
    {
        std::ofstream out(path);
        out << "budget_w = 300\nsolar = true\n";
    }
    Config c = Config::fromFile(path);
    EXPECT_DOUBLE_EQ(c.getDouble("budget_w"), 300.0);
    EXPECT_TRUE(c.getBool("solar"));
    std::remove(path.c_str());
}

TEST(Config, MissingFileFatal)
{
    EXPECT_EXIT(Config::fromFile("/nonexistent/heb.cfg"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace heb

/** @file Console table formatting. */

#include <gtest/gtest.h>

#include "util/table_printer.h"

namespace heb {
namespace {

TEST(TablePrinter, HeaderAndRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TablePrinter, NumericRowWithLabel)
{
    TablePrinter t({"scheme", "a", "b"});
    t.addRow("HEB-D", {1.23456, 2.0}, 2);
    std::string s = t.toString();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TablePrinter, ShortRowsPadded)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"only"});
    // Must not crash and must keep three columns.
    std::string s = t.toString();
    size_t pipes = 0;
    for (char ch : s.substr(s.rfind("only"))) {
        if (ch == '|')
            ++pipes;
    }
    EXPECT_GE(pipes, 3u);
}

TEST(TablePrinter, NumFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(-1.0, 0), "-1");
}

TEST(TablePrinter, ColumnsWidenToFitCells)
{
    TablePrinter t({"x"});
    t.addRow({"a-very-long-cell-value"});
    std::string s = t.toString();
    // Header row must be at least as wide as the widest cell.
    auto first_newline = s.find('\n');
    auto header = s.substr(0, first_newline);
    EXPECT_GE(header.size(),
              std::string("a-very-long-cell-value").size());
}

} // namespace
} // namespace heb

/** @file RunningStats, Histogram, Ewma and error metrics. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/statistics.h"

namespace heb {
namespace {

TEST(RunningStats, MeanAndVariance)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMaxSum)
{
    RunningStats s;
    s.add(-1.0);
    s.add(10.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, EmptyBehaviour)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DEATH(s.min(), "empty");
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-5.0);  // below range: tallied, not clamped into bin 0
    h.add(50.0);  // above range: tallied, not clamped into bin 9
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.inRange(), 2u);
    EXPECT_EQ(h.total(), 4u);
    // Fractions are over *all* samples, so out-of-range mass is
    // visible as bins summing below 1.
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.25);
}

TEST(Histogram, ExactBoundaries)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);   // lo is in range (first bin, half-open [lo, hi))
    h.add(10.0);  // hi is out of range
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenter)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_EXIT(Histogram(0.0, 0.0, 4), testing::ExitedWithCode(1),
                "hi > lo");
    EXPECT_EXIT(Histogram(0.0, 1.0, 0), testing::ExitedWithCode(1),
                "bin");
}

TEST(Ewma, FirstSamplePrimes)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.primed());
    e.add(10.0);
    EXPECT_TRUE(e.primed());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, Smooths)
{
    Ewma e(0.5);
    e.add(10.0);
    e.add(0.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
    e.add(5.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, AlphaValidation)
{
    EXPECT_EXIT(Ewma(0.0), testing::ExitedWithCode(1), "alpha");
    EXPECT_EXIT(Ewma(1.5), testing::ExitedWithCode(1), "alpha");
}

TEST(ErrorMetrics, Mape)
{
    std::vector<double> actual = {100.0, 200.0};
    std::vector<double> pred = {90.0, 220.0};
    EXPECT_NEAR(meanAbsolutePercentageError(actual, pred), 10.0,
                1e-12);
}

TEST(ErrorMetrics, MapeSkipsZeroActuals)
{
    std::vector<double> actual = {0.0, 100.0};
    std::vector<double> pred = {5.0, 110.0};
    EXPECT_NEAR(meanAbsolutePercentageError(actual, pred), 10.0,
                1e-12);
}

TEST(ErrorMetrics, Rmse)
{
    std::vector<double> actual = {1.0, 2.0, 3.0};
    std::vector<double> pred = {1.0, 2.0, 6.0};
    EXPECT_NEAR(rootMeanSquareError(actual, pred),
                std::sqrt(9.0 / 3.0), 1e-12);
}

TEST(ErrorMetrics, SizeMismatchFatal)
{
    std::vector<double> a = {1.0};
    std::vector<double> b = {1.0, 2.0};
    EXPECT_EXIT(meanAbsolutePercentageError(a, b),
                testing::ExitedWithCode(1), "mismatch");
}

} // namespace
} // namespace heb

/** @file Deterministic RNG wrapper. */

#include <gtest/gtest.h>

#include "util/rng.h"

namespace heb {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int v = r.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += r.normal(5.0, 2.0);
    EXPECT_NEAR(acc / n, 5.0, 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ExponentialPositive)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_GT(r.exponential(0.5), 0.0);
    EXPECT_EXIT(r.exponential(0.0), testing::ExitedWithCode(1),
                "rate");
}

TEST(SplitMix64, KnownAnswerVector)
{
    // Reference outputs of the published splitmix64 algorithm for
    // seed 0 — a cross-platform bit-exactness contract, not just
    // self-consistency.
    SplitMix64 s(0);
    EXPECT_EQ(s.next(), 0xE220A8397B1DCDAFULL);
    EXPECT_EQ(s.next(), 0x6E789E6AA1B965F4ULL);
    EXPECT_EQ(s.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, NextDoubleInUnitInterval)
{
    SplitMix64 s(99);
    for (int i = 0; i < 1000; ++i) {
        double v = s.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(SplitMix64, ForkIsIndependentAndPure)
{
    SplitMix64 parent(42);
    SplitMix64 a = parent.fork(1);
    SplitMix64 b = parent.fork(2);
    SplitMix64 a2 = parent.fork(1);
    // Same label -> same stream; different labels -> different.
    EXPECT_EQ(a.next(), a2.next());
    EXPECT_NE(a.next(), b.next());
    // fork() leaves the parent untouched.
    SplitMix64 fresh(42);
    EXPECT_EQ(parent.next(), fresh.next());
}

TEST(SplitMix64, ExponentialPositiveAndRateScales)
{
    SplitMix64 a(7), b(7);
    double sum_fast = 0.0, sum_slow = 0.0;
    for (int i = 0; i < 2000; ++i) {
        double fast = a.exponential(1.0);
        double slow = b.exponential(0.1);
        EXPECT_GT(fast, 0.0);
        sum_fast += fast;
        sum_slow += slow;
    }
    // Mean of Exp(rate) is 1/rate.
    EXPECT_NEAR(sum_fast / 2000.0, 1.0, 0.15);
    EXPECT_NEAR(sum_slow / 2000.0, 10.0, 1.5);
}

TEST(SplitMix64, ExponentialZeroRateFatal)
{
    SplitMix64 s(1);
    EXPECT_EXIT(s.exponential(0.0), testing::ExitedWithCode(1),
                "rate");
}

TEST(SplitMix64, BelowStaysInRange)
{
    SplitMix64 s(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(s.below(17), 17u);
}

TEST(Rng, LogNormalMeanApproximation)
{
    Rng r(13);
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += r.logNormalWithMean(10.0, 0.5);
    EXPECT_NEAR(acc / n, 10.0, 0.3);
}

} // namespace
} // namespace heb

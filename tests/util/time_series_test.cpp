/** @file TimeSeries container behaviour. */

#include <gtest/gtest.h>

#include "util/time_series.h"

namespace heb {
namespace {

TimeSeries
makeRamp(std::size_t n, double step = 1.0)
{
    TimeSeries ts(step);
    for (std::size_t i = 0; i < n; ++i)
        ts.append(static_cast<double>(i));
    return ts;
}

TEST(TimeSeries, AppendAndSize)
{
    TimeSeries ts(1.0);
    EXPECT_TRUE(ts.empty());
    ts.append(3.0);
    ts.append(4.0);
    EXPECT_EQ(ts.size(), 2u);
    EXPECT_DOUBLE_EQ(ts[0], 3.0);
    EXPECT_DOUBLE_EQ(ts.at(1), 4.0);
}

TEST(TimeSeries, TimeAxis)
{
    TimeSeries ts(2.0, 10.0);
    ts.append(0.0);
    ts.append(0.0);
    ts.append(0.0);
    EXPECT_DOUBLE_EQ(ts.timeAt(0), 10.0);
    EXPECT_DOUBLE_EQ(ts.timeAt(2), 14.0);
    EXPECT_DOUBLE_EQ(ts.duration(), 6.0);
}

TEST(TimeSeries, BasicStats)
{
    TimeSeries ts = makeRamp(5); // 0 1 2 3 4
    EXPECT_DOUBLE_EQ(ts.min(), 0.0);
    EXPECT_DOUBLE_EQ(ts.max(), 4.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
    EXPECT_DOUBLE_EQ(ts.sum(), 10.0);
}

TEST(TimeSeries, PercentileNearestRank)
{
    TimeSeries ts = makeRamp(100); // 0..99
    EXPECT_DOUBLE_EQ(ts.percentile(50.0), 49.0);
    EXPECT_DOUBLE_EQ(ts.percentile(100.0), 99.0);
    EXPECT_DOUBLE_EQ(ts.percentile(0.0), 0.0);
}

TEST(TimeSeries, ValueAtInterpolates)
{
    TimeSeries ts(10.0);
    ts.append(0.0);
    ts.append(10.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(5.0), 5.0);
    // Clamped outside the range.
    EXPECT_DOUBLE_EQ(ts.valueAt(-100.0), 0.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(1000.0), 10.0);
}

TEST(TimeSeries, IntegralWattHours)
{
    // 100 W for one hour at 60 s steps.
    TimeSeries ts(60.0);
    for (int i = 0; i < 60; ++i)
        ts.append(100.0);
    EXPECT_NEAR(ts.integralWattHours(), 100.0, 1e-9);
}

TEST(TimeSeries, FractionWhere)
{
    TimeSeries ts = makeRamp(10); // 0..9
    EXPECT_DOUBLE_EQ(ts.fractionWhere([](double v) { return v >= 5; }),
                     0.5);
    TimeSeries empty(1.0);
    EXPECT_DOUBLE_EQ(
        empty.fractionWhere([](double) { return true; }), 0.0);
}

TEST(TimeSeries, MapTransforms)
{
    TimeSeries ts = makeRamp(3);
    TimeSeries doubled = ts.map([](double v) { return 2.0 * v; });
    EXPECT_DOUBLE_EQ(doubled[2], 4.0);
    EXPECT_EQ(doubled.size(), 3u);
}

TEST(TimeSeries, AddElementwise)
{
    TimeSeries a = makeRamp(3);
    TimeSeries b = makeRamp(3);
    TimeSeries c = TimeSeries::add(a, b);
    EXPECT_DOUBLE_EQ(c[2], 4.0);
}

TEST(TimeSeries, DownsampleAverages)
{
    TimeSeries ts = makeRamp(6); // 0..5
    TimeSeries down = ts.downsample(2);
    ASSERT_EQ(down.size(), 3u);
    EXPECT_DOUBLE_EQ(down[0], 0.5);
    EXPECT_DOUBLE_EQ(down[2], 4.5);
    EXPECT_DOUBLE_EQ(down.stepSeconds(), 2.0);
}

TEST(TimeSeries, DownsamplePartialTail)
{
    TimeSeries ts = makeRamp(5); // 0..4
    TimeSeries down = ts.downsample(2);
    ASSERT_EQ(down.size(), 3u);
    EXPECT_DOUBLE_EQ(down[2], 4.0); // lone tail sample
}

TEST(TimeSeries, Slice)
{
    TimeSeries ts = makeRamp(10);
    TimeSeries s = ts.slice(3, 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s[0], 3.0);
    EXPECT_DOUBLE_EQ(s.startTime(), 3.0);
    // Slice past the end truncates.
    EXPECT_EQ(ts.slice(8, 10).size(), 2u);
}

TEST(TimeSeries, AppendSeries)
{
    TimeSeries a = makeRamp(3);
    TimeSeries b = makeRamp(2);
    a.appendSeries(b);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_DOUBLE_EQ(a[3], 0.0);
}

TEST(TimeSeriesDeath, InvalidStepRejected)
{
    EXPECT_EXIT(TimeSeries(0.0), testing::ExitedWithCode(1), "step");
}

TEST(TimeSeriesDeath, OutOfRangePanics)
{
    TimeSeries ts(1.0);
    ts.append(1.0);
    EXPECT_DEATH((void)ts.at(5), "out of range");
}

} // namespace
} // namespace heb

/** @file CSV writer/reader round trip. */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "util/csv.h"

namespace heb {
namespace {

class CsvTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = testing::TempDir() + "heb_csv_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(CsvTest, RoundTrip)
{
    {
        CsvWriter w(path_);
        w.header({"a", "b", "c"});
        w.row({1.0, 2.0, 3.0});
        w.row({4.5, 5.5, 6.5});
    }
    CsvTable t = readCsv(path_);
    ASSERT_EQ(t.columns.size(), 3u);
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.columns[1], "b");
    EXPECT_DOUBLE_EQ(t.rows[1][2], 6.5);
}

TEST_F(CsvTest, ColumnExtraction)
{
    {
        CsvWriter w(path_);
        w.header({"x", "y"});
        w.row({1.0, 10.0});
        w.row({2.0, 20.0});
    }
    CsvTable t = readCsv(path_);
    std::vector<double> y = t.column("y");
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[1], 20.0);
    EXPECT_EQ(t.columnIndex("x"), 0u);
}

TEST_F(CsvTest, MissingColumnFatal)
{
    {
        CsvWriter w(path_);
        w.header({"x"});
        w.row({1.0});
    }
    CsvTable t = readCsv(path_);
    EXPECT_EXIT((void)t.column("nope"), testing::ExitedWithCode(1),
                "no column");
}

TEST_F(CsvTest, StringsRow)
{
    {
        CsvWriter w(path_);
        w.header({"k", "v"});
        w.rowStrings({"1", "2"});
    }
    CsvTable t = readCsv(path_);
    EXPECT_DOUBLE_EQ(t.rows[0][0], 1.0);
}

TEST(Csv, MissingFileFatal)
{
    EXPECT_EXIT(readCsv("/nonexistent/heb.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(Csv, WriterBadPathIsNonFatal)
{
    // An unwritable destination must not kill the process (a bad
    // --trace-out used to fatal() mid-sweep); the writer goes inert
    // instead.
    CsvWriter w("/nonexistent/heb_csv_out.csv");
    EXPECT_FALSE(w.ok());
    w.header({"a", "b"});
    w.row({1.0, 2.0});
    w.rowStrings({"x", "y"});
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.path(), "/nonexistent/heb_csv_out.csv");
}

TEST_F(CsvTest, WriterReportsOkOnGoodPath)
{
    CsvWriter w(path_);
    EXPECT_TRUE(w.ok());
    w.header({"a"});
    w.row({1.0});
    EXPECT_TRUE(w.ok());
}

} // namespace
} // namespace heb

/** @file Logging levels and termination semantics. */

#include <gtest/gtest.h>

#include "util/logging.h"

namespace heb {
namespace {

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("user error ", 42), testing::ExitedWithCode(1),
                "user error 42");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("bug ", "here"), "bug here");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning");
    inform("status line");
    SUCCEED();
}

TEST(Logging, ThresholdSuppressionRoundTrip)
{
    LogLevel old = logThreshold();
    setLogThreshold(LogLevel::Fatal);
    EXPECT_EQ(logThreshold(), LogLevel::Fatal);
    // Suppressed but harmless.
    debugLog("invisible");
    setLogThreshold(old);
    EXPECT_EQ(logThreshold(), old);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, 'b', 2.5), "a1b2.5");
}

} // namespace
} // namespace heb

/** @file Shared sweep thread pool (ordering, exceptions, nesting). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.h"

namespace heb {
namespace {

TEST(ThreadPool, MapPreservesInputOrdering)
{
    ThreadPool pool(4);
    std::vector<int> items(100);
    std::iota(items.begin(), items.end(), 0);
    // Uneven task latency scrambles completion order; results must
    // still land at their input index.
    auto out = pool.map(items, [](int v) {
        if (v % 7 == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        return v * 3;
    });
    ASSERT_EQ(out.size(), items.size());
    for (int v : items)
        EXPECT_EQ(out[static_cast<std::size_t>(v)], v * 3);
}

TEST(ThreadPool, SingleJobPoolRunsSeriallyInCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<int> items = {1, 2, 3, 4};
    auto out = pool.map(items, [caller](int v) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return v + 1;
    });
    EXPECT_EQ(out, (std::vector<int>{2, 3, 4, 5}));
}

TEST(ThreadPool, MapOfEmptyInputReturnsEmpty)
{
    ThreadPool pool(2);
    std::vector<int> none;
    EXPECT_TRUE(pool.map(none, [](int v) { return v; }).empty());
}

TEST(ThreadPool, FirstExceptionPropagatesAfterFullDrain)
{
    ThreadPool pool(4);
    std::vector<int> items(50);
    std::iota(items.begin(), items.end(), 0);
    std::atomic<int> attempted{0};
    EXPECT_THROW(
        pool.map(items,
                 [&attempted](int v) {
                     attempted.fetch_add(1);
                     if (v == 13)
                         throw std::runtime_error("boom");
                     return v;
                 }),
        std::runtime_error);
    // A failure poisons the batch result but never abandons items.
    EXPECT_EQ(attempted.load(), 50);
}

TEST(ThreadPool, NestedMapOnSamePoolCompletes)
{
    ThreadPool pool(2);
    std::vector<int> outer = {0, 1, 2, 3};
    auto out = pool.map(outer, [&pool](int o) {
        std::vector<int> inner = {1, 2, 3, 4, 5};
        auto sums = pool.map(
            inner, [o](int v) { return o * 100 + v; });
        int total = 0;
        for (int s : sums)
            total += s;
        return total;
    });
    // sum(inner) = 15, plus 5 * o * 100.
    EXPECT_EQ(out, (std::vector<int>{15, 515, 1015, 1515}));
}

TEST(ThreadPool, NestedSubmitFromWorkerRunsInline)
{
    ThreadPool pool(2); // one worker: a queued nested task would hang
    auto outer = pool.submit([&pool]() {
        auto inner = pool.submit([]() { return 41; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, SubmitOnSingleJobPoolRunsInline)
{
    ThreadPool pool(1);
    auto f = pool.submit([]() { return 7; });
    EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultJobsHonoursEnvironment)
{
    ::setenv("HEB_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    ::setenv("HEB_JOBS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ::setenv("HEB_JOBS", "0", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ::unsetenv("HEB_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, ConfigureGlobalResizesSharedPool)
{
    ThreadPool::configureGlobal(2);
    EXPECT_EQ(ThreadPool::global().jobs(), 2u);
    std::vector<int> items = {5, 6};
    auto out = parallelMap(items, [](int v) { return v * v; });
    EXPECT_EQ(out, (std::vector<int>{25, 36}));
    ThreadPool::configureGlobal(0); // restore default sizing
    EXPECT_GE(ThreadPool::global().jobs(), 1u);
}


TEST(ThreadPool, WorkerExceptionMessagePreservedAndPoolReusable)
{
    // Every item throws, so worker threads (not just the caller)
    // hit the throw path; the first captured exception must come
    // back intact through the rethrow in map().
    ThreadPool pool(4);
    std::vector<int> items(64);
    std::iota(items.begin(), items.end(), 0);
    try {
        pool.map(items, [](int) -> int {
            throw std::runtime_error("worker boom");
        });
        FAIL() << "map must rethrow the batch exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker boom");
    }

    // A poisoned batch must not wedge the pool: the next map on the
    // same pool completes normally.
    std::vector<int> ok =
        pool.map(items, [](int v) { return v + 1; });
    ASSERT_EQ(ok.size(), items.size());
    EXPECT_EQ(ok[10], 11);
    EXPECT_EQ(ok[63], 64);
}

TEST(ThreadPool, ExceptionFromParallelMapHelperPropagates)
{
    std::vector<int> items = {1, 2, 3};
    EXPECT_THROW(parallelMap(items,
                             [](int v) -> int {
                                 if (v == 2)
                                     throw std::logic_error("bad");
                                 return v;
                             }),
                 std::logic_error);
}

} // namespace
} // namespace heb

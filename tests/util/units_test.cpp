/** @file Unit conversions. */

#include <gtest/gtest.h>

#include "util/units.h"

namespace heb {
namespace {

TEST(Units, JoulesToWattHoursRoundTrip)
{
    EXPECT_DOUBLE_EQ(joulesToWattHours(3600.0), 1.0);
    EXPECT_DOUBLE_EQ(wattHoursToJoules(1.0), 3600.0);
    EXPECT_DOUBLE_EQ(wattHoursToJoules(joulesToWattHours(1234.5)),
                     1234.5);
}

TEST(Units, KwhConversions)
{
    EXPECT_DOUBLE_EQ(kwhToWh(2.5), 2500.0);
    EXPECT_DOUBLE_EQ(whToKwh(2500.0), 2.5);
}

TEST(Units, TimeConversions)
{
    EXPECT_DOUBLE_EQ(hoursToSeconds(2.0), 7200.0);
    EXPECT_DOUBLE_EQ(secondsToHours(1800.0), 0.5);
    EXPECT_DOUBLE_EQ(minutesToSeconds(10.0), 600.0);
}

TEST(Units, EnergyFromPower)
{
    // 100 W for 36 s = 1 Wh.
    EXPECT_DOUBLE_EQ(energyWh(100.0, 36.0), 1.0);
    EXPECT_DOUBLE_EQ(powerFromEnergy(1.0, 36.0), 100.0);
}

TEST(Units, AmpHours)
{
    EXPECT_DOUBLE_EQ(ampHours(2.0, 1800.0), 1.0);
}

TEST(Units, DayConstantsConsistent)
{
    EXPECT_DOUBLE_EQ(kSecondsPerDay, 86400.0);
    EXPECT_DOUBLE_EQ(kSecondsPerHour * kHoursPerDay, kSecondsPerDay);
}

} // namespace
} // namespace heb

/** @file Cluster aggregation and LRU shutdown. */

#include <gtest/gtest.h>

#include "dc/cluster.h"

namespace heb {
namespace {

TEST(Cluster, AggregatePower)
{
    Cluster c(6);
    std::vector<double> util(6, 0.0);
    EXPECT_DOUBLE_EQ(c.totalPowerW(util, 100.0), 180.0); // 6 x idle
    std::vector<double> busy(6, 1.0);
    EXPECT_DOUBLE_EQ(c.totalPowerW(busy, 100.0), 420.0); // 6 x peak
}

TEST(Cluster, NameplateAndIdleFloor)
{
    Cluster c(6);
    EXPECT_DOUBLE_EQ(c.nameplatePeakW(), 420.0);
    EXPECT_DOUBLE_EQ(c.idleFloorW(), 180.0);
}

TEST(Cluster, LruShutdownPicksLeastRecentlyActive)
{
    Cluster c(3);
    c.server(0).touch(100.0, 0.9);
    c.server(1).touch(50.0, 0.9);
    c.server(2).touch(200.0, 0.9);
    auto victims = c.shutdownLru(1, 300.0);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], 1u); // oldest activity
    EXPECT_FALSE(c.server(1).isOn());
    EXPECT_EQ(c.onlineCount(), 2u);
}

TEST(Cluster, LruShutdownMultiple)
{
    Cluster c(4);
    for (std::size_t i = 0; i < 4; ++i)
        c.server(i).touch(10.0 * static_cast<double>(i) + 1.0, 0.9);
    auto victims = c.shutdownLru(2, 100.0);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(victims[0], 0u);
    EXPECT_EQ(victims[1], 1u);
}

TEST(Cluster, ShutdownMoreThanOnline)
{
    Cluster c(2);
    auto victims = c.shutdownLru(10, 1.0);
    EXPECT_EQ(victims.size(), 2u);
    EXPECT_EQ(c.onlineCount(), 0u);
}

TEST(Cluster, OffServersDrawNothing)
{
    Cluster c(2);
    c.shutdownLru(1, 0.0);
    std::vector<double> busy(2, 1.0);
    EXPECT_DOUBLE_EQ(c.totalPowerW(busy, 10.0), 70.0);
}

TEST(Cluster, PowerOnAllReboots)
{
    Cluster c(3);
    c.shutdownLru(2, 0.0);
    c.powerOnAll(100.0);
    EXPECT_EQ(c.onlineCount(), 3u);
    EXPECT_EQ(c.totalOnOffCycles(), 2u);
    EXPECT_GT(c.totalBootEnergyWh(), 0.0);
}

TEST(Cluster, DowntimeAggregates)
{
    Cluster c(2);
    c.server(0).powerOff(0.0);
    c.server(0).accrueDowntime(5.0);
    c.server(1).powerOff(0.0);
    c.server(1).accrueDowntime(7.0);
    EXPECT_DOUBLE_EQ(c.totalDowntimeSeconds(), 12.0);
}

TEST(Cluster, UtilSizeMismatchFatal)
{
    Cluster c(3);
    std::vector<double> wrong(2, 0.5);
    EXPECT_EXIT((void)c.totalPowerW(wrong, 0.0),
                testing::ExitedWithCode(1), "mismatch");
}

TEST(Cluster, ZeroServersRejected)
{
    EXPECT_EXIT(Cluster(0), testing::ExitedWithCode(1), "at least");
}

} // namespace
} // namespace heb

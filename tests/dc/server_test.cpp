/** @file Server power model, DVFS and on/off cycling. */

#include <gtest/gtest.h>

#include "dc/server.h"

namespace heb {
namespace {

Server
node()
{
    return Server(ServerParams{}, 0);
}

TEST(Server, IdleAndPeakEnvelope)
{
    Server s = node();
    EXPECT_DOUBLE_EQ(s.powerAt(0.0, 100.0), 30.0);
    EXPECT_DOUBLE_EQ(s.powerAt(1.0, 100.0), 70.0);
}

TEST(Server, PowerScalesLinearlyWithUtil)
{
    Server s = node();
    EXPECT_DOUBLE_EQ(s.powerAt(0.5, 100.0), 50.0);
}

TEST(Server, UtilizationClamped)
{
    Server s = node();
    EXPECT_DOUBLE_EQ(s.powerAt(2.0, 100.0), 70.0);
    EXPECT_DOUBLE_EQ(s.powerAt(-1.0, 100.0), 30.0);
}

TEST(Server, LowFrequencyCutsDynamicPower)
{
    Server s = node();
    s.setFrequency(Server::Frequency::Low);
    double p_low = s.powerAt(1.0, 100.0);
    // (1.3/1.8)^2 ~ 0.52 of the 40 W dynamic range.
    EXPECT_NEAR(p_low, 30.0 + 40.0 * 0.522, 0.5);
    EXPECT_LT(p_low, 70.0);
    // Idle power unaffected by frequency.
    EXPECT_DOUBLE_EQ(s.powerAt(0.0, 100.0), 30.0);
}

TEST(Server, OffDrawsNothing)
{
    Server s = node();
    s.powerOff(10.0);
    EXPECT_DOUBLE_EQ(s.powerAt(0.9, 11.0), 0.0);
    EXPECT_FALSE(s.isOn());
    EXPECT_FALSE(s.isUp(11.0));
}

TEST(Server, BootWindowDrawsBootPower)
{
    Server s = node();
    s.powerOff(10.0);
    s.powerOn(20.0);
    EXPECT_TRUE(s.isOn());
    EXPECT_FALSE(s.isUp(30.0)); // still booting
    EXPECT_DOUBLE_EQ(s.powerAt(0.9, 30.0), s.params().bootPowerW);
    EXPECT_TRUE(s.isUp(20.0 + s.params().bootTimeS));
}

TEST(Server, OnOffCyclesCounted)
{
    Server s = node();
    s.powerOff(1.0);
    s.powerOn(2.0);
    s.powerOff(3.0);
    s.powerOn(4.0);
    EXPECT_EQ(s.onOffCycles(), 2u);
    EXPECT_GT(s.bootEnergyWh(), 0.0);
}

TEST(Server, RedundantPowerCommandsIgnored)
{
    Server s = node();
    s.powerOn(1.0); // already on
    EXPECT_EQ(s.onOffCycles(), 0u);
    s.powerOff(2.0);
    s.powerOff(3.0);
    EXPECT_EQ(s.onOffCycles(), 0u); // cycles count power-ONs
}

TEST(Server, DowntimeAccrual)
{
    Server s = node();
    s.powerOff(0.0);
    s.accrueDowntime(10.0);
    s.accrueDowntime(5.0);
    EXPECT_DOUBLE_EQ(s.downtimeSeconds(), 15.0);
}

TEST(Server, TouchUpdatesLruOnlyWhenBusyAndUp)
{
    Server s = node();
    s.touch(100.0, 0.5);
    EXPECT_DOUBLE_EQ(s.lastActiveTime(), 100.0);
    s.touch(200.0, 0.01); // idle: not an activity
    EXPECT_DOUBLE_EQ(s.lastActiveTime(), 100.0);
    s.powerOff(300.0);
    s.touch(400.0, 0.9); // off: not an activity
    EXPECT_DOUBLE_EQ(s.lastActiveTime(), 100.0);
}

TEST(Server, BootEnergyMatchesCycles)
{
    Server s = node();
    s.powerOff(0.0);
    s.powerOn(1.0);
    double expected =
        s.params().bootPowerW * s.params().bootTimeS / 3600.0;
    EXPECT_NEAR(s.bootEnergyWh(), expected, 1e-9);
}

TEST(Server, InvalidEnvelopeRejected)
{
    ServerParams p;
    p.peakPowerW = p.idlePowerW;
    EXPECT_EXIT(Server(p, 0), testing::ExitedWithCode(1),
                "envelope");
}

} // namespace
} // namespace heb

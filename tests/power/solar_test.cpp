/** @file Synthetic solar array model. */

#include <gtest/gtest.h>

#include "power/solar_array.h"
#include "util/units.h"

namespace heb {
namespace {

SolarArray
daySolar(std::uint64_t seed = 1)
{
    return SolarArray(SolarParams{}, kSecondsPerDay, 60.0, seed);
}

TEST(Solar, ZeroAtNight)
{
    SolarArray s = daySolar();
    EXPECT_DOUBLE_EQ(s.availablePowerW(0.0), 0.0);          // midnight
    EXPECT_DOUBLE_EQ(s.availablePowerW(23.0 * 3600.0), 0.0); // 23:00
}

TEST(Solar, GeneratesDuringDay)
{
    SolarArray s = daySolar();
    EXPECT_GT(s.availablePowerW(12.0 * 3600.0), 0.0);
}

TEST(Solar, NeverExceedsPlateRatingByMuch)
{
    SolarArray s = daySolar();
    // Allow the small multiplicative noise overshoot.
    EXPECT_LE(s.trace().max(), s.params().ratedPowerW * 1.25);
    EXPECT_GE(s.trace().min(), 0.0);
}

TEST(Solar, DeterministicForSeed)
{
    SolarArray a = daySolar(7), b = daySolar(7);
    EXPECT_DOUBLE_EQ(a.totalGenerationWh(), b.totalGenerationWh());
}

TEST(Solar, SeedsDiffer)
{
    SolarArray a = daySolar(1), b = daySolar(2);
    EXPECT_NE(a.totalGenerationWh(), b.totalGenerationWh());
}

TEST(Solar, CloudsReduceEnergyVsClearSky)
{
    SolarParams clear;
    clear.pLeaveClear = 0.0; // never leaves the clear state
    clear.noiseSigma = 0.0;
    SolarArray c(clear, kSecondsPerDay, 60.0, 1);

    SolarParams cloudy;
    cloudy.pLeaveClear = 0.5;
    cloudy.pLeavePartly = 0.05;
    cloudy.noiseSigma = 0.0;
    SolarArray k(cloudy, kSecondsPerDay, 60.0, 1);

    EXPECT_GT(c.totalGenerationWh(), k.totalGenerationWh());
}

TEST(Solar, ClearSkyEnergyMatchesHalfSine)
{
    SolarParams p;
    p.pLeaveClear = 0.0;
    p.noiseSigma = 0.0;
    SolarArray s(p, kSecondsPerDay, 60.0, 1);
    // Integral of rated * sin over 12 h = rated * (2/pi) * 12 h.
    double expected = p.ratedPowerW * 2.0 / 3.141592653589793 * 12.0;
    EXPECT_NEAR(s.totalGenerationWh(), expected, expected * 0.02);
}

TEST(Solar, HarvestAccounting)
{
    SolarArray s = daySolar();
    s.recordDraw(43200.0, 100.0, 3600.0);
    EXPECT_NEAR(s.harvestedWh(), 100.0, 1e-9);
}

TEST(Solar, MultiDayRepeatsDiurnalPattern)
{
    SolarParams p;
    p.pLeaveClear = 0.0;
    p.noiseSigma = 0.0;
    SolarArray s(p, 2.0 * kSecondsPerDay, 60.0, 1);
    EXPECT_NEAR(s.availablePowerW(12.0 * 3600.0),
                s.availablePowerW(36.0 * 3600.0), 1e-6);
}

TEST(Solar, InvalidConfigRejected)
{
    SolarParams p;
    p.sunriseHour = 19.0;
    EXPECT_EXIT(SolarArray(p, 3600.0, 60.0, 1),
                testing::ExitedWithCode(1), "sunrise");
    EXPECT_EXIT(SolarArray(SolarParams{}, -1.0, 60.0, 1),
                testing::ExitedWithCode(1), "duration");
}

} // namespace
} // namespace heb

/** @file Delivery-architecture efficiency model (paper Fig. 7/8). */

#include <gtest/gtest.h>

#include "power/topology.h"

namespace heb {
namespace {

TEST(Topology, CentralizedAlwaysPaysDoubleConversion)
{
    Topology t(TopologyKind::Centralized, HebDeployment::ClusterLevel,
               1000.0);
    EXPECT_LT(t.utilityPathEfficiency(500.0), 0.96);
    EXPECT_LT(t.bufferPathEfficiency(500.0), 0.96);
}

TEST(Topology, DistributedUtilityPathIsFree)
{
    Topology t(TopologyKind::Distributed, HebDeployment::RackLevel,
               1000.0);
    EXPECT_DOUBLE_EQ(t.utilityPathEfficiency(500.0), 1.0);
}

TEST(Topology, HebRackLevelBeatsClusterLevelOnBufferPath)
{
    Topology rack(TopologyKind::HebHybrid, HebDeployment::RackLevel,
                  1000.0);
    Topology cluster(TopologyKind::HebHybrid,
                     HebDeployment::ClusterLevel, 1000.0);
    EXPECT_GT(rack.bufferPathEfficiency(500.0),
              cluster.bufferPathEfficiency(500.0));
}

TEST(Topology, HebBufferPathBeatsCentralized)
{
    Topology heb(TopologyKind::HebHybrid, HebDeployment::RackLevel,
                 1000.0);
    Topology central(TopologyKind::Centralized,
                     HebDeployment::RackLevel, 1000.0);
    EXPECT_GT(heb.bufferPathEfficiency(500.0),
              central.bufferPathEfficiency(500.0));
}

TEST(Topology, FineGrainedShavingSupport)
{
    Topology central(TopologyKind::Centralized,
                     HebDeployment::RackLevel, 1000.0);
    Topology heb(TopologyKind::HebHybrid, HebDeployment::RackLevel,
                 1000.0);
    EXPECT_FALSE(central.supportsFineGrainedShaving());
    EXPECT_TRUE(heb.supportsFineGrainedShaving());
}

TEST(Topology, BufferStageTripGatesAvailability)
{
    Topology t(TopologyKind::HebHybrid, HebDeployment::RackLevel,
               1000.0);
    EXPECT_TRUE(t.bufferStageAvailable(0.0));
    t.tripBufferStage(50.0, 120.0);
    EXPECT_FALSE(t.bufferStageAvailable(100.0));
    EXPECT_TRUE(t.bufferStageAvailable(170.0));
    EXPECT_EQ(t.bufferStageTrips(), 1u);
}

TEST(Topology, BufferStageTripPerKind)
{
    // Every delivery architecture exposes a trippable buffer stage.
    for (TopologyKind kind :
         {TopologyKind::Centralized, TopologyKind::Distributed,
          TopologyKind::HebHybrid}) {
        Topology t(kind, HebDeployment::ClusterLevel, 1000.0);
        t.tripBufferStage(0.0, 60.0);
        EXPECT_FALSE(t.bufferStageAvailable(30.0));
        EXPECT_TRUE(t.bufferStageAvailable(60.0));
    }
}

TEST(Topology, EnergySharingMatrix)
{
    // Per-server batteries cannot share; rack-level HEB pools are
    // local; cluster-level HEB shares.
    Topology distributed(TopologyKind::Distributed,
                         HebDeployment::RackLevel, 1000.0);
    Topology heb_rack(TopologyKind::HebHybrid,
                      HebDeployment::RackLevel, 1000.0);
    Topology heb_cluster(TopologyKind::HebHybrid,
                         HebDeployment::ClusterLevel, 1000.0);
    EXPECT_FALSE(distributed.supportsEnergySharing());
    EXPECT_FALSE(heb_rack.supportsEnergySharing());
    EXPECT_TRUE(heb_cluster.supportsEnergySharing());
}

TEST(Topology, ChargePathLossy)
{
    Topology t(TopologyKind::HebHybrid, HebDeployment::RackLevel,
               1000.0);
    double eff = t.chargePathEfficiency(200.0);
    EXPECT_GT(eff, 0.85);
    EXPECT_LT(eff, 1.0);
}

TEST(Topology, Names)
{
    EXPECT_STREQ(topologyKindName(TopologyKind::HebHybrid),
                 "heb-hybrid");
    EXPECT_STREQ(hebDeploymentName(HebDeployment::RackLevel),
                 "rack-level");
}

TEST(Topology, InvalidRatedPower)
{
    EXPECT_EXIT(Topology(TopologyKind::HebHybrid,
                         HebDeployment::RackLevel, 0.0),
                testing::ExitedWithCode(1), "rated");
}

} // namespace
} // namespace heb

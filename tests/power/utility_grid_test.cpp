/** @file Budgeted utility feed and peak metering. */

#include <gtest/gtest.h>

#include "power/utility_grid.h"

namespace heb {
namespace {

TEST(UtilityGrid, ConstantBudget)
{
    UtilityGrid g(260.0);
    EXPECT_DOUBLE_EQ(g.availablePowerW(0.0), 260.0);
    EXPECT_DOUBLE_EQ(g.availablePowerW(1e6), 260.0);
}

TEST(UtilityGrid, BudgetMutable)
{
    UtilityGrid g(260.0);
    g.setBudgetW(300.0);
    EXPECT_DOUBLE_EQ(g.budgetW(), 300.0);
    EXPECT_EXIT(g.setBudgetW(-1.0), testing::ExitedWithCode(1),
                "non-negative");
}

TEST(UtilityGrid, EnergyAccumulates)
{
    UtilityGrid g(260.0);
    g.recordDraw(0.0, 100.0, 3600.0);
    g.recordDraw(3600.0, 50.0, 1800.0);
    EXPECT_NEAR(g.energyDrawnWh(), 125.0, 1e-9);
}

TEST(UtilityGrid, PeakTrackedWithinPeriod)
{
    UtilityGrid g(260.0, 3600.0);
    g.recordDraw(0.0, 100.0, 1.0);
    g.recordDraw(10.0, 240.0, 1.0);
    g.recordDraw(20.0, 50.0, 1.0);
    EXPECT_DOUBLE_EQ(g.currentPeriodPeakW(), 240.0);
    EXPECT_TRUE(g.billedPeaksW().empty());
}

TEST(UtilityGrid, PeriodRollsOver)
{
    UtilityGrid g(260.0, 100.0);
    g.recordDraw(0.0, 200.0, 1.0);
    g.recordDraw(150.0, 120.0, 1.0); // second period
    ASSERT_EQ(g.billedPeaksW().size(), 1u);
    EXPECT_DOUBLE_EQ(g.billedPeaksW()[0], 200.0);
    EXPECT_DOUBLE_EQ(g.currentPeriodPeakW(), 120.0);
}

TEST(UtilityGrid, LongGapEmitsEmptyPeriods)
{
    UtilityGrid g(260.0, 100.0);
    g.recordDraw(0.0, 200.0, 1.0);
    g.recordDraw(350.0, 90.0, 1.0); // skips two full periods
    EXPECT_EQ(g.billedPeaksW().size(), 3u);
    EXPECT_DOUBLE_EQ(g.billedPeaksW()[0], 200.0);
    EXPECT_DOUBLE_EQ(g.billedPeaksW()[1], 0.0);
}

TEST(UtilityGrid, CloseBillingPeriodFlushes)
{
    UtilityGrid g(260.0);
    g.recordDraw(0.0, 180.0, 1.0);
    g.closeBillingPeriod();
    ASSERT_EQ(g.billedPeaksW().size(), 1u);
    EXPECT_DOUBLE_EQ(g.billedPeaksW()[0], 180.0);
    // Idempotent when nothing new was drawn.
    g.closeBillingPeriod();
    EXPECT_EQ(g.billedPeaksW().size(), 1u);
}

TEST(UtilityGrid, InvalidConstruction)
{
    EXPECT_EXIT(UtilityGrid(-5.0), testing::ExitedWithCode(1),
                "non-negative");
    EXPECT_EXIT(UtilityGrid(100.0, 0.0), testing::ExitedWithCode(1),
                "period");
}

} // namespace
} // namespace heb

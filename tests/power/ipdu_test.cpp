/** @file IPDU metering and outlet control. */

#include <gtest/gtest.h>

#include "power/ipdu.h"

namespace heb {
namespace {

TEST(Ipdu, RecordsPerOutlet)
{
    Ipdu pdu(3);
    pdu.recordSample(0, 30.0);
    pdu.recordSample(0, 40.0);
    pdu.recordSample(1, 70.0);
    EXPECT_EQ(pdu.outletLog(0).size(), 2u);
    EXPECT_DOUBLE_EQ(pdu.lastSample(0), 40.0);
    EXPECT_DOUBLE_EQ(pdu.lastSample(1), 70.0);
    EXPECT_DOUBLE_EQ(pdu.lastSample(2), 0.0);
}

TEST(Ipdu, TotalPower)
{
    Ipdu pdu(2);
    pdu.recordSample(0, 30.0);
    pdu.recordSample(1, 45.0);
    EXPECT_DOUBLE_EQ(pdu.totalPowerW(), 75.0);
}

TEST(Ipdu, OutletSwitching)
{
    Ipdu pdu(2);
    EXPECT_TRUE(pdu.outletOn(0));
    pdu.setOutletOn(0, false);
    EXPECT_FALSE(pdu.outletOn(0));
    EXPECT_EQ(pdu.outletSwitchCount(0), 1u);
    // Turning on again doesn't count as an off-switch.
    pdu.setOutletOn(0, true);
    EXPECT_EQ(pdu.outletSwitchCount(0), 1u);
}

TEST(Ipdu, SampleStepPropagates)
{
    Ipdu pdu(1, 2.0);
    pdu.recordSample(0, 10.0);
    EXPECT_DOUBLE_EQ(pdu.outletLog(0).stepSeconds(), 2.0);
}

TEST(IpduDeath, OutletRangeChecked)
{
    Ipdu pdu(1);
    EXPECT_DEATH(pdu.recordSample(5, 1.0), "out of range");
}

TEST(Ipdu, ZeroOutletsRejected)
{
    EXPECT_EXIT(Ipdu(0), testing::ExitedWithCode(1), "outlet");
}

} // namespace
} // namespace heb

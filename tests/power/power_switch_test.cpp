/** @file Two-way relay semantics. */

#include <gtest/gtest.h>

#include "power/power_switch.h"

namespace heb {
namespace {

TEST(PowerSwitch, StartsOnUtility)
{
    PowerSwitch sw("sw0");
    EXPECT_EQ(sw.feedAt(0.0), SwitchFeed::Utility);
    EXPECT_EQ(sw.actuations(), 0u);
}

TEST(PowerSwitch, CommandTakesEffectAfterLatency)
{
    PowerSwitchParams p;
    p.switchingLatencyS = 0.05;
    PowerSwitch sw("sw0", p);
    sw.command(SwitchFeed::Supercap, 10.0);
    EXPECT_EQ(sw.feedAt(10.01), SwitchFeed::Off); // still settling
    EXPECT_EQ(sw.feedAt(10.06), SwitchFeed::Supercap);
}

TEST(PowerSwitch, RedundantCommandIsNoOp)
{
    PowerSwitch sw("sw0");
    sw.command(SwitchFeed::Battery, 0.0);
    sw.command(SwitchFeed::Battery, 1.0);
    EXPECT_EQ(sw.actuations(), 1u);
}

TEST(PowerSwitch, ActuationsCounted)
{
    PowerSwitch sw("sw0");
    sw.command(SwitchFeed::Battery, 0.0);
    sw.command(SwitchFeed::Supercap, 1.0);
    sw.command(SwitchFeed::Utility, 2.0);
    EXPECT_EQ(sw.actuations(), 3u);
}

TEST(PowerSwitch, WearFraction)
{
    PowerSwitchParams p;
    p.ratedActuations = 100;
    PowerSwitch sw("sw0", p);
    for (int i = 0; i < 10; ++i) {
        sw.command(SwitchFeed::Battery, i * 2.0);
        sw.command(SwitchFeed::Supercap, i * 2.0 + 1.0);
    }
    EXPECT_NEAR(sw.wearFraction(), 0.2, 1e-12);
}

TEST(PowerSwitch, FeedNames)
{
    EXPECT_STREQ(switchFeedName(SwitchFeed::Battery), "battery");
    EXPECT_STREQ(switchFeedName(SwitchFeed::Supercap), "supercap");
    EXPECT_STREQ(switchFeedName(SwitchFeed::Utility), "utility");
    EXPECT_STREQ(switchFeedName(SwitchFeed::Off), "off");
}

} // namespace
} // namespace heb

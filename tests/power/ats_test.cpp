/** @file Automatic transfer switch. */

#include <gtest/gtest.h>

#include "power/ats.h"
#include "power/solar_array.h"
#include "power/utility_grid.h"
#include "util/units.h"

namespace heb {
namespace {

class AtsTest : public testing::Test
{
  protected:
    AtsTest()
        : grid_(260.0),
          solar_(SolarParams{}, kSecondsPerDay, 60.0, 1),
          ats_(&grid_, &solar_, 0.05)
    {
    }

    UtilityGrid grid_;
    SolarArray solar_;
    Ats ats_;
};

TEST_F(AtsTest, StartsOnPrimary)
{
    EXPECT_EQ(ats_.connectedAt(0.0), Ats::Input::Primary);
    EXPECT_DOUBLE_EQ(ats_.availablePowerW(0.0), 260.0);
}

TEST_F(AtsTest, TransferGapThenAlternate)
{
    ats_.transferTo(Ats::Input::Alternate, 43200.0);
    // Break-before-make: nothing connected during the gap.
    EXPECT_EQ(ats_.connectedAt(43200.01), Ats::Input::None);
    EXPECT_DOUBLE_EQ(ats_.availablePowerW(43200.01), 0.0);
    EXPECT_EQ(ats_.connectedAt(43200.06), Ats::Input::Alternate);
    EXPECT_GT(ats_.availablePowerW(43200.06), 0.0); // midday solar
}

TEST_F(AtsTest, RedundantTransferIgnored)
{
    ats_.transferTo(Ats::Input::Primary, 1.0);
    EXPECT_EQ(ats_.transferCount(), 0u);
}

TEST_F(AtsTest, TransferCountTracks)
{
    ats_.transferTo(Ats::Input::Alternate, 1.0);
    ats_.transferTo(Ats::Input::Primary, 2.0);
    EXPECT_EQ(ats_.transferCount(), 2u);
}

TEST(Ats, MissingAlternateFatal)
{
    UtilityGrid grid(100.0);
    Ats ats(&grid, nullptr);
    EXPECT_EXIT(ats.transferTo(Ats::Input::Alternate, 0.0),
                testing::ExitedWithCode(1), "alternate");
}

TEST(Ats, NullPrimaryFatal)
{
    EXPECT_EXIT(Ats(nullptr, nullptr), testing::ExitedWithCode(1),
                "primary");
}

} // namespace
} // namespace heb

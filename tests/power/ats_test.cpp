/** @file Automatic transfer switch. */

#include <gtest/gtest.h>

#include "power/ats.h"
#include "power/solar_array.h"
#include "power/utility_grid.h"
#include "util/units.h"

namespace heb {
namespace {

class AtsTest : public testing::Test
{
  protected:
    AtsTest()
        : grid_(260.0),
          solar_(SolarParams{}, kSecondsPerDay, 60.0, 1),
          ats_(&grid_, &solar_, 0.05)
    {
    }

    UtilityGrid grid_;
    SolarArray solar_;
    Ats ats_;
};

TEST_F(AtsTest, StartsOnPrimary)
{
    EXPECT_EQ(ats_.connectedAt(0.0), Ats::Input::Primary);
    EXPECT_DOUBLE_EQ(ats_.availablePowerW(0.0), 260.0);
}

TEST_F(AtsTest, TransferGapThenAlternate)
{
    ats_.transferTo(Ats::Input::Alternate, 43200.0);
    // Break-before-make: nothing connected during the gap.
    EXPECT_EQ(ats_.connectedAt(43200.01), Ats::Input::None);
    EXPECT_DOUBLE_EQ(ats_.availablePowerW(43200.01), 0.0);
    EXPECT_EQ(ats_.connectedAt(43200.06), Ats::Input::Alternate);
    EXPECT_GT(ats_.availablePowerW(43200.06), 0.0); // midday solar
}

TEST_F(AtsTest, RedundantTransferIgnored)
{
    ats_.transferTo(Ats::Input::Primary, 1.0);
    EXPECT_EQ(ats_.transferCount(), 0u);
}

TEST_F(AtsTest, TransferCountTracks)
{
    ats_.transferTo(Ats::Input::Alternate, 1.0);
    ats_.transferTo(Ats::Input::Primary, 2.0);
    EXPECT_EQ(ats_.transferCount(), 2u);
}

TEST_F(AtsTest, GapCoversWholeTransferWindow)
{
    ats_.transferTo(Ats::Input::Alternate, 100.0);
    // Break-before-make: the whole [100, 100.05) window is open.
    EXPECT_EQ(ats_.connectedAt(100.0), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(100.049), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(100.05), Ats::Input::Alternate);
}

TEST_F(AtsTest, BackToBackTransfersExtendTheGap)
{
    // A second command before the first settles re-opens the switch
    // until the later settle time; the gap never shrinks.
    ats_.transferTo(Ats::Input::Alternate, 10.0);
    ats_.transferTo(Ats::Input::Primary, 10.02);
    EXPECT_EQ(ats_.commanded(), Ats::Input::Primary);
    EXPECT_EQ(ats_.connectedAt(10.04), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(10.06), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(10.07), Ats::Input::Primary);
    EXPECT_EQ(ats_.transferCount(), 2u);
}

TEST_F(AtsTest, ForcedWindowHoldsSwitchOpen)
{
    ats_.forceOpen(50.0, 45.0);
    EXPECT_EQ(ats_.connectedAt(49.9), Ats::Input::Primary);
    EXPECT_EQ(ats_.connectedAt(50.0), Ats::Input::None);
    EXPECT_DOUBLE_EQ(ats_.availablePowerW(70.0), 0.0);
    EXPECT_EQ(ats_.connectedAt(95.0), Ats::Input::Primary);
    EXPECT_EQ(ats_.forcedOpenCount(), 1u);
}

TEST_F(AtsTest, FutureAndOverlappingWindowsCompose)
{
    // Windows registered ahead of time only bite when reached, and
    // overlapping windows union.
    ats_.forceOpen(100.0, 10.0);
    ats_.forceOpen(105.0, 20.0);
    EXPECT_EQ(ats_.connectedAt(0.0), Ats::Input::Primary);
    EXPECT_EQ(ats_.connectedAt(104.0), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(115.0), Ats::Input::None);
    EXPECT_EQ(ats_.connectedAt(125.0), Ats::Input::Primary);
    EXPECT_EQ(ats_.forcedOpenCount(), 2u);
}

TEST_F(AtsTest, TransferDuringForcedWindowStaysOpen)
{
    ats_.forceOpen(10.0, 60.0);
    ats_.transferTo(Ats::Input::Alternate, 20.0);
    // The stuck mechanism wins until its window clears...
    EXPECT_EQ(ats_.connectedAt(30.0), Ats::Input::None);
    // ...then the commanded input connects.
    EXPECT_EQ(ats_.connectedAt(70.0), Ats::Input::Alternate);
}

TEST(Ats, ForceOpenNegativeDurationFatal)
{
    UtilityGrid grid(100.0);
    Ats ats(&grid, nullptr);
    EXPECT_EXIT(ats.forceOpen(0.0, -1.0),
                testing::ExitedWithCode(1), "duration");
}

TEST(Ats, MissingAlternateFatal)
{
    UtilityGrid grid(100.0);
    Ats ats(&grid, nullptr);
    EXPECT_EXIT(ats.transferTo(Ats::Input::Alternate, 0.0),
                testing::ExitedWithCode(1), "alternate");
}

TEST(Ats, NullPrimaryFatal)
{
    EXPECT_EXIT(Ats(nullptr, nullptr), testing::ExitedWithCode(1),
                "primary");
}

} // namespace
} // namespace heb

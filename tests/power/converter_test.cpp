/** @file Converter loss model. */

#include <gtest/gtest.h>

#include "power/converter.h"

namespace heb {
namespace {

TEST(Converter, InputOutputInverse)
{
    Converter c = Converter::rackInverter(1000.0);
    for (double out : {10.0, 100.0, 500.0, 900.0}) {
        double in = c.inputFor(out);
        EXPECT_NEAR(c.outputFor(in), out, 1e-9);
        EXPECT_GT(in, out);
    }
}

TEST(Converter, EfficiencyRisesWithLoad)
{
    Converter c = Converter::rackInverter(1000.0);
    EXPECT_LT(c.efficiencyAt(20.0), c.efficiencyAt(500.0));
}

TEST(Converter, DoubleConversionLossierThanDcDc)
{
    Converter ups = Converter::doubleConversionUps(1000.0);
    Converter dc = Converter::dcDcStage(1000.0);
    EXPECT_LT(ups.efficiencyAt(500.0), dc.efficiencyAt(500.0));
}

TEST(Converter, UpsLossInPaperBand)
{
    // Paper §4.1: double conversion costs 4-10 % at realistic loads.
    Converter ups = Converter::doubleConversionUps(1000.0);
    double eff = ups.efficiencyAt(600.0);
    EXPECT_GT(eff, 0.88);
    EXPECT_LT(eff, 0.96);
}

TEST(Converter, ZeroPowerEdgeCases)
{
    Converter c = Converter::rackInverter(1000.0);
    EXPECT_DOUBLE_EQ(c.outputFor(0.0), 0.0);
    EXPECT_DOUBLE_EQ(c.inputFor(0.0), 0.0);
    EXPECT_DOUBLE_EQ(c.efficiencyAt(0.0), 0.0);
}

TEST(Converter, TinyInputSwallowedByFixedLoss)
{
    Converter c = Converter::rackInverter(1000.0);
    // Input below the no-load loss delivers nothing.
    EXPECT_DOUBLE_EQ(c.outputFor(1.0), 0.0);
}

TEST(Converter, TransferAccounting)
{
    Converter c = Converter::rackInverter(1000.0);
    c.recordTransfer(500.0, 3600.0);
    EXPECT_NEAR(c.deliveredWh(), 500.0, 1e-9);
    EXPECT_GT(c.lossWh(), 0.0);
    EXPECT_NEAR(c.lossWh(), c.inputFor(500.0) - 500.0, 1e-9);
}

TEST(Converter, TripTakesItOfflineUntilRestart)
{
    Converter c = Converter::rackInverter(1000.0);
    EXPECT_TRUE(c.availableAt(0.0));
    c.trip(100.0, 180.0);
    EXPECT_FALSE(c.availableAt(100.0));
    EXPECT_FALSE(c.availableAt(279.9));
    EXPECT_TRUE(c.availableAt(280.0));
    EXPECT_EQ(c.tripCount(), 1u);
}

TEST(Converter, OverlappingTripsKeepLatestRestart)
{
    Converter c = Converter::rackInverter(1000.0);
    c.trip(10.0, 100.0);
    c.trip(20.0, 10.0); // shorter trip must not shorten the outage
    EXPECT_FALSE(c.availableAt(100.0));
    EXPECT_TRUE(c.availableAt(110.0));
    EXPECT_EQ(c.tripCount(), 2u);
}

TEST(Converter, TripNegativeDelayFatal)
{
    Converter c = Converter::rackInverter(1000.0);
    EXPECT_EXIT(c.trip(0.0, -1.0), testing::ExitedWithCode(1),
                "delay");
}

TEST(Converter, InvalidParamsRejected)
{
    ConverterParams p;
    p.ratedPowerW = 0.0;
    EXPECT_EXIT(Converter{p}, testing::ExitedWithCode(1), "rated");
    ConverterParams q;
    q.proportionalLoss = 1.0;
    EXPECT_EXIT(Converter{q}, testing::ExitedWithCode(1),
                "proportional");
}

} // namespace
} // namespace heb

/** @file 8-year peak-shaving economics (Fig. 15c). */

#include <gtest/gtest.h>

#include "tco/peak_shaving.h"

namespace heb {
namespace {

TEST(PeakShaving, PaperDefaultsShape)
{
    PeakShavingModel model;
    auto results =
        model.evaluateAll(PeakShavingModel::paperDefaults());
    ASSERT_EQ(results.size(), 4u);

    const auto &ba_only = results[0];
    const auto &ba_first = results[1];
    const auto &sc_first = results[2];
    const auto &heb = results[3];

    // Break-even ordering from the paper:
    // HEB (3.7) < BaOnly (4.2) < SCFirst (4.9) < BaFirst (6.3).
    EXPECT_LT(heb.breakEvenYears, ba_only.breakEvenYears);
    EXPECT_LT(ba_only.breakEvenYears, sc_first.breakEvenYears);
    EXPECT_LT(sc_first.breakEvenYears, ba_first.breakEvenYears);

    // All within the 8-year horizon except possibly BaFirst.
    EXPECT_GT(heb.breakEvenYears, 2.0);
    EXPECT_LT(heb.breakEvenYears, 5.0);
    EXPECT_NEAR(ba_only.breakEvenYears, 4.2, 1.0);
}

TEST(PeakShaving, HebEarnsAtLeast1_9xBaOnly)
{
    PeakShavingModel model;
    auto results =
        model.evaluateAll(PeakShavingModel::paperDefaults());
    double ratio = PeakShavingModel::revenueRatio(results[3],
                                                  results[0]);
    EXPECT_GE(ratio, 1.9);
}

TEST(PeakShaving, BaFirstLessProfitableThanBaOnly)
{
    // Paper: "if not appropriately managed, leveraging hybrid energy
    // buffer may be less profitable than homogeneous".
    PeakShavingModel model;
    auto results =
        model.evaluateAll(PeakShavingModel::paperDefaults());
    EXPECT_LT(results[1].netAtHorizon, results[0].netAtHorizon);
}

TEST(PeakShaving, CumulativeCurveShape)
{
    PeakShavingModel model;
    PeakShavingResult r =
        model.evaluate(PeakShavingModel::paperDefaults()[3]);
    ASSERT_EQ(r.cumulativeNetByYear.size(), 8u);
    // Starts below zero (CAP-EX), strictly increasing.
    EXPECT_LT(r.cumulativeNetByYear.front(), 0.0);
    for (std::size_t i = 1; i < r.cumulativeNetByYear.size(); ++i) {
        EXPECT_GT(r.cumulativeNetByYear[i],
                  r.cumulativeNetByYear[i - 1]);
    }
    EXPECT_DOUBLE_EQ(r.netAtHorizon, r.cumulativeNetByYear.back());
}

TEST(PeakShaving, HybridCapexHigherThanBatteryOnly)
{
    PeakShavingModel model;
    auto results =
        model.evaluateAll(PeakShavingModel::paperDefaults());
    EXPECT_GT(results[3].capex, results[0].capex);
}

TEST(PeakShaving, NeverProfitableReportsNegative)
{
    PeakShavingModel model;
    SchemeEconomics hopeless{"Hopeless", true, 0.01, 1.0};
    PeakShavingResult r = model.evaluate(hopeless);
    EXPECT_LT(r.breakEvenYears, 0.0);
    EXPECT_LT(r.netAtHorizon, 0.0);
}

TEST(PeakShaving, ShavedPowerCappedByFacility)
{
    PeakShavingParams p;
    p.bufferKwh = 10000.0; // absurd buffer
    PeakShavingModel model(p);
    PeakShavingResult r = model.evaluate(
        SchemeEconomics{"X", true, 1.0, 10.0});
    // Revenue bounded by the facility-share cap.
    EXPECT_LE(r.annualRevenue,
              p.datacenterKw * 0.4 * p.tariffPerKwMonth * 12.0 +
                  1e-6);
}

TEST(PeakShaving, InvalidInputsFatal)
{
    PeakShavingParams p;
    p.bufferKwh = 0.0;
    EXPECT_EXIT(PeakShavingModel{p}, testing::ExitedWithCode(1),
                "sizes");
    PeakShavingModel model;
    EXPECT_EXIT(model.evaluate(SchemeEconomics{"X", true, 2.0, 4.0}),
                testing::ExitedWithCode(1), "effectiveness");
    EXPECT_EXIT(model.evaluate(SchemeEconomics{"X", true, 0.5, 0.0}),
                testing::ExitedWithCode(1), "lifetime");
}

} // namespace
} // namespace heb

/** @file ROI model (Fig. 15b). */

#include <gtest/gtest.h>

#include "tco/roi.h"

namespace heb {
namespace {

TEST(Roi, BlendedCost)
{
    RoiModel m;
    // 0.7 * 300 + 0.3 * 10000 = 3210 $/kWh.
    EXPECT_NEAR(m.hybridCostPerKwh(), 3210.0, 1e-9);
}

TEST(Roi, PositiveInMostOperatingRegions)
{
    // Paper: "a positive ROI across most of the operating regions".
    RoiModel m;
    int positive = 0, total = 0;
    for (double c_cap = 2.0; c_cap <= 20.0; c_cap += 2.0) {
        for (double e : {0.25, 0.5, 1.0}) {
            ++total;
            if (m.roi(c_cap, e) > 0.0)
                ++positive;
        }
    }
    EXPECT_GT(positive, total / 2);
}

TEST(Roi, MonotoneInInfraCost)
{
    RoiModel m;
    EXPECT_GT(m.roi(20.0, 1.0), m.roi(10.0, 1.0));
    EXPECT_GT(m.roi(10.0, 1.0), m.roi(2.0, 1.0));
}

TEST(Roi, LongerPeaksHurt)
{
    RoiModel m;
    EXPECT_GT(m.roi(10.0, 0.5), m.roi(10.0, 2.0));
}

TEST(Roi, AmortizationApplied)
{
    RoiModel m;
    // Annualized infra for 12 $/W over 12 years = 1 $/W/yr.
    EXPECT_NEAR(m.annualizedInfraCostPerW(12.0), 1.0, 1e-12);
    // One hour of sustain: 0.7 g battery + 0.3 g SC, amortized.
    double expected = 0.001 * (0.7 * 300.0 / 4.0 +
                               0.3 * 10000.0 / 12.0);
    EXPECT_NEAR(m.annualizedBufferCostPerW(1.0), expected, 1e-9);
}

TEST(Roi, InvalidParams)
{
    RoiParams p;
    p.batteryLifeYears = 0.0;
    EXPECT_EXIT(RoiModel{p}, testing::ExitedWithCode(1), "lifetime");
    RoiModel m;
    EXPECT_EXIT((void)m.annualizedBufferCostPerW(0.0),
                testing::ExitedWithCode(1), "peak hours");
}

} // namespace
} // namespace heb

/** @file Storage cost table and prototype breakdown (Fig. 4/15a). */

#include <gtest/gtest.h>

#include "tco/cost_model.h"

namespace heb {
namespace {

TEST(CostModel, TechnologiesPresent)
{
    const auto &techs = storageTechnologies();
    EXPECT_GE(techs.size(), 5u);
    EXPECT_NO_FATAL_FAILURE(findTechnology("lead-acid"));
    EXPECT_NO_FATAL_FAILURE(findTechnology("supercap"));
}

TEST(CostModel, ScInitialCostDwarfsLeadAcid)
{
    // Paper Fig. 4: SC 10-30 k$/kWh vs lead-acid 100-300 $/kWh.
    const auto &sc = findTechnology("supercap");
    const auto &la = findTechnology("lead-acid");
    EXPECT_GT(sc.initialCostPerKwh, 30.0 * la.initialCostPerKwh);
}

TEST(CostModel, ScAmortizedCostCompetitive)
{
    // Paper Fig. 4: per-cycle, SC lands near NiCd/Li-ion (~0.4
    // $/kWh/cycle) and above lead-acid.
    const auto &sc = findTechnology("supercap");
    const auto &la = findTechnology("lead-acid");
    const auto &li = findTechnology("li-ion");
    EXPECT_LT(sc.amortizedCostPerKwhCycle(),
              li.amortizedCostPerKwhCycle());
    EXPECT_GT(sc.amortizedCostPerKwhCycle() * 1.2,
              la.amortizedCostPerKwhCycle() * 0.5);
    EXPECT_LT(sc.amortizedCostPerKwhCycle(), 0.5);
}

TEST(CostModel, ScCycleLifeOrdersOfMagnitudeHigher)
{
    const auto &sc = findTechnology("supercap");
    const auto &la = findTechnology("lead-acid");
    EXPECT_GE(sc.cycleLife, 100.0 * la.cycleLife);
}

TEST(CostModel, UnknownTechnologyFatal)
{
    EXPECT_EXIT(findTechnology("unobtanium"),
                testing::ExitedWithCode(1), "Unknown");
}

TEST(CostBreakdown, EsdsDominate)
{
    CostBreakdown b = prototypeCostBreakdown();
    double esd_frac = b.fraction("energy-storage-devices");
    // Paper Fig. 15a: ESDs ~55 % of the node cost.
    EXPECT_GT(esd_frac, 0.45);
    EXPECT_LT(esd_frac, 0.65);
}

TEST(CostBreakdown, NodeUnder16PercentOfServers)
{
    CostBreakdown b = prototypeCostBreakdown();
    EXPECT_LT(b.total(), 0.16 * kSixServerCostDollars);
}

TEST(CostBreakdown, FractionsSumToOne)
{
    CostBreakdown b = prototypeCostBreakdown();
    double acc = 0.0;
    for (const auto &item : b.items)
        acc += b.fraction(item.component);
    EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(CostBreakdown, MissingComponentIsZero)
{
    CostBreakdown b = prototypeCostBreakdown();
    EXPECT_DOUBLE_EQ(b.fraction("flux-capacitor"), 0.0);
}

} // namespace
} // namespace heb

file(REMOVE_RECURSE
  "CMakeFiles/fleet_scaleout.dir/fleet_scaleout.cpp.o"
  "CMakeFiles/fleet_scaleout.dir/fleet_scaleout.cpp.o.d"
  "fleet_scaleout"
  "fleet_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

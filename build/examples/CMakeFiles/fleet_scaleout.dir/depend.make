# Empty dependencies file for fleet_scaleout.
# This may be replaced when dependencies are built.

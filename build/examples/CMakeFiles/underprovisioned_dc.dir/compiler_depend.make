# Empty compiler generated dependencies file for underprovisioned_dc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/underprovisioned_dc.dir/underprovisioned_dc.cpp.o"
  "CMakeFiles/underprovisioned_dc.dir/underprovisioned_dc.cpp.o.d"
  "underprovisioned_dc"
  "underprovisioned_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/underprovisioned_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

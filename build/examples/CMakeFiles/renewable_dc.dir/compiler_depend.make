# Empty compiler generated dependencies file for renewable_dc.
# This may be replaced when dependencies are built.

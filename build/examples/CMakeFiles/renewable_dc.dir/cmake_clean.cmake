file(REMOVE_RECURSE
  "CMakeFiles/renewable_dc.dir/renewable_dc.cpp.o"
  "CMakeFiles/renewable_dc.dir/renewable_dc.cpp.o.d"
  "renewable_dc"
  "renewable_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renewable_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

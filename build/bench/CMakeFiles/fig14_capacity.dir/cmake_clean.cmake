file(REMOVE_RECURSE
  "CMakeFiles/fig14_capacity.dir/fig14_capacity.cpp.o"
  "CMakeFiles/fig14_capacity.dir/fig14_capacity.cpp.o.d"
  "fig14_capacity"
  "fig14_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

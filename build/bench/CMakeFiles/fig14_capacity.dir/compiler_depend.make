# Empty compiler generated dependencies file for fig14_capacity.
# This may be replaced when dependencies are built.

# Empty dependencies file for demand_charge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/demand_charge.dir/demand_charge.cpp.o"
  "CMakeFiles/demand_charge.dir/demand_charge.cpp.o.d"
  "demand_charge"
  "demand_charge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_charge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig13_ratio.
# This may be replaced when dependencies are built.

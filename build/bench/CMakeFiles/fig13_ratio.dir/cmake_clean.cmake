file(REMOVE_RECURSE
  "CMakeFiles/fig13_ratio.dir/fig13_ratio.cpp.o"
  "CMakeFiles/fig13_ratio.dir/fig13_ratio.cpp.o.d"
  "fig13_ratio"
  "fig13_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

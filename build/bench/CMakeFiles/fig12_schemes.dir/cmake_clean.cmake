file(REMOVE_RECURSE
  "CMakeFiles/fig12_schemes.dir/fig12_schemes.cpp.o"
  "CMakeFiles/fig12_schemes.dir/fig12_schemes.cpp.o.d"
  "fig12_schemes"
  "fig12_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

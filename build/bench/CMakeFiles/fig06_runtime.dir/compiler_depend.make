# Empty compiler generated dependencies file for fig06_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_runtime.dir/fig06_runtime.cpp.o"
  "CMakeFiles/fig06_runtime.dir/fig06_runtime.cpp.o.d"
  "fig06_runtime"
  "fig06_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig15_tco.dir/fig15_tco.cpp.o"
  "CMakeFiles/fig15_tco.dir/fig15_tco.cpp.o.d"
  "fig15_tco"
  "fig15_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_tco.cpp" "bench/CMakeFiles/fig15_tco.dir/fig15_tco.cpp.o" "gcc" "bench/CMakeFiles/fig15_tco.dir/fig15_tco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/heb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/heb_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/heb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/esd/CMakeFiles/heb_esd.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/heb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/heb_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/heb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig05_discharge.dir/fig05_discharge.cpp.o"
  "CMakeFiles/fig05_discharge.dir/fig05_discharge.cpp.o.d"
  "fig05_discharge"
  "fig05_discharge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_discharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig05_discharge.
# This may be replaced when dependencies are built.

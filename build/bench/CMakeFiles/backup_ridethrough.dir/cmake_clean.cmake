file(REMOVE_RECURSE
  "CMakeFiles/backup_ridethrough.dir/backup_ridethrough.cpp.o"
  "CMakeFiles/backup_ridethrough.dir/backup_ridethrough.cpp.o.d"
  "backup_ridethrough"
  "backup_ridethrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_ridethrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for backup_ridethrough.
# This may be replaced when dependencies are built.

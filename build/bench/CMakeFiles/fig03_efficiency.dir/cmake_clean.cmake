file(REMOVE_RECURSE
  "CMakeFiles/fig03_efficiency.dir/fig03_efficiency.cpp.o"
  "CMakeFiles/fig03_efficiency.dir/fig03_efficiency.cpp.o.d"
  "fig03_efficiency"
  "fig03_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

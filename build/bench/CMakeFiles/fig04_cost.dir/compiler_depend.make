# Empty compiler generated dependencies file for fig04_cost.
# This may be replaced when dependencies are built.

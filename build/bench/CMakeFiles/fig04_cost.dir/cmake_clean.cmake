file(REMOVE_RECURSE
  "CMakeFiles/fig04_cost.dir/fig04_cost.cpp.o"
  "CMakeFiles/fig04_cost.dir/fig04_cost.cpp.o.d"
  "fig04_cost"
  "fig04_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig01_mppu.dir/fig01_mppu.cpp.o"
  "CMakeFiles/fig01_mppu.dir/fig01_mppu.cpp.o.d"
  "fig01_mppu"
  "fig01_mppu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_mppu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

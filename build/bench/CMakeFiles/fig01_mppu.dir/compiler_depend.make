# Empty compiler generated dependencies file for fig01_mppu.
# This may be replaced when dependencies are built.

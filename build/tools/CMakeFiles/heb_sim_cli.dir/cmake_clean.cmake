file(REMOVE_RECURSE
  "CMakeFiles/heb_sim_cli.dir/heb_sim_cli.cpp.o"
  "CMakeFiles/heb_sim_cli.dir/heb_sim_cli.cpp.o.d"
  "heb_sim"
  "heb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for heb_sim_cli.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/heb_util_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_esd_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_power_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_dc_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_core_tests[1]_include.cmake")
include("/root/repo/build/tests/heb_tco_tests[1]_include.cmake")
add_test(heb_sim_tests "/root/repo/build/tests/heb_sim_tests")
set_tests_properties(heb_sim_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;30;heb_add_test_dir;/root/repo/tests/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/heb_sim_tests.dir/sim/aging_adaptation_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/aging_adaptation_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/demand_charge_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/demand_charge_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/dvfs_capping_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/dvfs_capping_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/failure_injection_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/failure_injection_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/fleet_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/fleet_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/paper_claims_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/paper_claims_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/rack_domain_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/rack_domain_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/result_io_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/result_io_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/sensor_noise_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/sensor_noise_test.cpp.o.d"
  "CMakeFiles/heb_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/heb_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "heb_sim_tests"
  "heb_sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

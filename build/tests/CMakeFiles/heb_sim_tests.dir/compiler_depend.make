# Empty compiler generated dependencies file for heb_sim_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/heb_dc_tests.dir/dc/cluster_test.cpp.o"
  "CMakeFiles/heb_dc_tests.dir/dc/cluster_test.cpp.o.d"
  "CMakeFiles/heb_dc_tests.dir/dc/server_test.cpp.o"
  "CMakeFiles/heb_dc_tests.dir/dc/server_test.cpp.o.d"
  "heb_dc_tests"
  "heb_dc_tests.pdb"
  "heb_dc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_dc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for heb_dc_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/heb_core_tests.dir/core/controller_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/load_assignment_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/load_assignment_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/pat_persistence_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/pat_persistence_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/pat_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/pat_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/predictor_quality_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/predictor_quality_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/predictor_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/predictor_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/profiler_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/profiler_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/ride_through_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/ride_through_test.cpp.o.d"
  "CMakeFiles/heb_core_tests.dir/core/schemes_test.cpp.o"
  "CMakeFiles/heb_core_tests.dir/core/schemes_test.cpp.o.d"
  "heb_core_tests"
  "heb_core_tests.pdb"
  "heb_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for heb_core_tests.
# This may be replaced when dependencies are built.

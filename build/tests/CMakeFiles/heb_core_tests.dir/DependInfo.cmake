
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/controller_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/controller_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/controller_test.cpp.o.d"
  "/root/repo/tests/core/load_assignment_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/load_assignment_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/load_assignment_test.cpp.o.d"
  "/root/repo/tests/core/pat_persistence_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/pat_persistence_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/pat_persistence_test.cpp.o.d"
  "/root/repo/tests/core/pat_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/pat_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/pat_test.cpp.o.d"
  "/root/repo/tests/core/predictor_quality_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/predictor_quality_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/predictor_quality_test.cpp.o.d"
  "/root/repo/tests/core/predictor_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/predictor_test.cpp.o.d"
  "/root/repo/tests/core/profiler_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/profiler_test.cpp.o.d"
  "/root/repo/tests/core/ride_through_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/ride_through_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/ride_through_test.cpp.o.d"
  "/root/repo/tests/core/schemes_test.cpp" "tests/CMakeFiles/heb_core_tests.dir/core/schemes_test.cpp.o" "gcc" "tests/CMakeFiles/heb_core_tests.dir/core/schemes_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/heb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/heb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/esd/CMakeFiles/heb_esd.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/heb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/heb_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/heb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/heb_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

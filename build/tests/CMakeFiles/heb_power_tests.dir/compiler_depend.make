# Empty compiler generated dependencies file for heb_power_tests.
# This may be replaced when dependencies are built.

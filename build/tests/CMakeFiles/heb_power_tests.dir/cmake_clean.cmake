file(REMOVE_RECURSE
  "CMakeFiles/heb_power_tests.dir/power/ats_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/ats_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/converter_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/converter_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/ipdu_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/ipdu_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/power_switch_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/power_switch_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/solar_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/solar_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/topology_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/topology_test.cpp.o.d"
  "CMakeFiles/heb_power_tests.dir/power/utility_grid_test.cpp.o"
  "CMakeFiles/heb_power_tests.dir/power/utility_grid_test.cpp.o.d"
  "heb_power_tests"
  "heb_power_tests.pdb"
  "heb_power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/heb_util_tests.dir/util/config_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/config_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/csv_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/logging_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/statistics_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/statistics_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/table_printer_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/table_printer_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/time_series_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/time_series_test.cpp.o.d"
  "CMakeFiles/heb_util_tests.dir/util/units_test.cpp.o"
  "CMakeFiles/heb_util_tests.dir/util/units_test.cpp.o.d"
  "heb_util_tests"
  "heb_util_tests.pdb"
  "heb_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

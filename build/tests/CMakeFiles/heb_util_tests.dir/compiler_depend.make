# Empty compiler generated dependencies file for heb_util_tests.
# This may be replaced when dependencies are built.

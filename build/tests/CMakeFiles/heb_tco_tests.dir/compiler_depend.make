# Empty compiler generated dependencies file for heb_tco_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/heb_tco_tests.dir/tco/cost_model_test.cpp.o"
  "CMakeFiles/heb_tco_tests.dir/tco/cost_model_test.cpp.o.d"
  "CMakeFiles/heb_tco_tests.dir/tco/peak_shaving_test.cpp.o"
  "CMakeFiles/heb_tco_tests.dir/tco/peak_shaving_test.cpp.o.d"
  "CMakeFiles/heb_tco_tests.dir/tco/roi_test.cpp.o"
  "CMakeFiles/heb_tco_tests.dir/tco/roi_test.cpp.o.d"
  "heb_tco_tests"
  "heb_tco_tests.pdb"
  "heb_tco_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_tco_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

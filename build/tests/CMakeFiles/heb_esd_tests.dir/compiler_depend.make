# Empty compiler generated dependencies file for heb_esd_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/esd/bank_builder_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/bank_builder_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/bank_builder_test.cpp.o.d"
  "/root/repo/tests/esd/battery_aging_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/battery_aging_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/battery_aging_test.cpp.o.d"
  "/root/repo/tests/esd/battery_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/battery_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/battery_test.cpp.o.d"
  "/root/repo/tests/esd/efficiency_meter_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/efficiency_meter_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/efficiency_meter_test.cpp.o.d"
  "/root/repo/tests/esd/fuzz_conservation_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/fuzz_conservation_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/fuzz_conservation_test.cpp.o.d"
  "/root/repo/tests/esd/kibam_analytical_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/kibam_analytical_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/kibam_analytical_test.cpp.o.d"
  "/root/repo/tests/esd/lifetime_model_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/lifetime_model_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/lifetime_model_test.cpp.o.d"
  "/root/repo/tests/esd/liion_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/liion_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/liion_test.cpp.o.d"
  "/root/repo/tests/esd/peukert_battery_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/peukert_battery_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/peukert_battery_test.cpp.o.d"
  "/root/repo/tests/esd/pool_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/pool_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/pool_test.cpp.o.d"
  "/root/repo/tests/esd/rainflow_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/rainflow_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/rainflow_test.cpp.o.d"
  "/root/repo/tests/esd/supercap_test.cpp" "tests/CMakeFiles/heb_esd_tests.dir/esd/supercap_test.cpp.o" "gcc" "tests/CMakeFiles/heb_esd_tests.dir/esd/supercap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/heb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/heb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/esd/CMakeFiles/heb_esd.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/heb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/heb_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/heb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/heb_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/heb_esd_tests.dir/esd/bank_builder_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/bank_builder_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/battery_aging_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/battery_aging_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/battery_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/battery_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/efficiency_meter_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/efficiency_meter_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/fuzz_conservation_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/fuzz_conservation_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/kibam_analytical_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/kibam_analytical_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/lifetime_model_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/lifetime_model_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/liion_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/liion_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/peukert_battery_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/peukert_battery_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/pool_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/pool_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/rainflow_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/rainflow_test.cpp.o.d"
  "CMakeFiles/heb_esd_tests.dir/esd/supercap_test.cpp.o"
  "CMakeFiles/heb_esd_tests.dir/esd/supercap_test.cpp.o.d"
  "heb_esd_tests"
  "heb_esd_tests.pdb"
  "heb_esd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_esd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for heb_workload_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/heb_workload_tests.dir/workload/composite_workload_test.cpp.o"
  "CMakeFiles/heb_workload_tests.dir/workload/composite_workload_test.cpp.o.d"
  "CMakeFiles/heb_workload_tests.dir/workload/google_trace_test.cpp.o"
  "CMakeFiles/heb_workload_tests.dir/workload/google_trace_test.cpp.o.d"
  "CMakeFiles/heb_workload_tests.dir/workload/peak_shapes_test.cpp.o"
  "CMakeFiles/heb_workload_tests.dir/workload/peak_shapes_test.cpp.o.d"
  "CMakeFiles/heb_workload_tests.dir/workload/profiles_test.cpp.o"
  "CMakeFiles/heb_workload_tests.dir/workload/profiles_test.cpp.o.d"
  "CMakeFiles/heb_workload_tests.dir/workload/trace_workload_test.cpp.o"
  "CMakeFiles/heb_workload_tests.dir/workload/trace_workload_test.cpp.o.d"
  "heb_workload_tests"
  "heb_workload_tests.pdb"
  "heb_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libheb_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/heb_sim.dir/experiment.cpp.o"
  "CMakeFiles/heb_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/heb_sim.dir/fleet.cpp.o"
  "CMakeFiles/heb_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/heb_sim.dir/rack_domain.cpp.o"
  "CMakeFiles/heb_sim.dir/rack_domain.cpp.o.d"
  "CMakeFiles/heb_sim.dir/result_io.cpp.o"
  "CMakeFiles/heb_sim.dir/result_io.cpp.o.d"
  "CMakeFiles/heb_sim.dir/simulator.cpp.o"
  "CMakeFiles/heb_sim.dir/simulator.cpp.o.d"
  "libheb_sim.a"
  "libheb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

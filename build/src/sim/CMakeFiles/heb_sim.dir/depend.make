# Empty dependencies file for heb_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libheb_tco.a"
)

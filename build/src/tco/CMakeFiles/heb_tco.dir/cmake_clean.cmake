file(REMOVE_RECURSE
  "CMakeFiles/heb_tco.dir/cost_model.cpp.o"
  "CMakeFiles/heb_tco.dir/cost_model.cpp.o.d"
  "CMakeFiles/heb_tco.dir/peak_shaving.cpp.o"
  "CMakeFiles/heb_tco.dir/peak_shaving.cpp.o.d"
  "CMakeFiles/heb_tco.dir/roi.cpp.o"
  "CMakeFiles/heb_tco.dir/roi.cpp.o.d"
  "libheb_tco.a"
  "libheb_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

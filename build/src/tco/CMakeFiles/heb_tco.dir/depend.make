# Empty dependencies file for heb_tco.
# This may be replaced when dependencies are built.

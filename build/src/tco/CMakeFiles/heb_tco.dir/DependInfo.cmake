
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tco/cost_model.cpp" "src/tco/CMakeFiles/heb_tco.dir/cost_model.cpp.o" "gcc" "src/tco/CMakeFiles/heb_tco.dir/cost_model.cpp.o.d"
  "/root/repo/src/tco/peak_shaving.cpp" "src/tco/CMakeFiles/heb_tco.dir/peak_shaving.cpp.o" "gcc" "src/tco/CMakeFiles/heb_tco.dir/peak_shaving.cpp.o.d"
  "/root/repo/src/tco/roi.cpp" "src/tco/CMakeFiles/heb_tco.dir/roi.cpp.o" "gcc" "src/tco/CMakeFiles/heb_tco.dir/roi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/heb_util.dir/config.cpp.o"
  "CMakeFiles/heb_util.dir/config.cpp.o.d"
  "CMakeFiles/heb_util.dir/csv.cpp.o"
  "CMakeFiles/heb_util.dir/csv.cpp.o.d"
  "CMakeFiles/heb_util.dir/logging.cpp.o"
  "CMakeFiles/heb_util.dir/logging.cpp.o.d"
  "CMakeFiles/heb_util.dir/rng.cpp.o"
  "CMakeFiles/heb_util.dir/rng.cpp.o.d"
  "CMakeFiles/heb_util.dir/statistics.cpp.o"
  "CMakeFiles/heb_util.dir/statistics.cpp.o.d"
  "CMakeFiles/heb_util.dir/table_printer.cpp.o"
  "CMakeFiles/heb_util.dir/table_printer.cpp.o.d"
  "CMakeFiles/heb_util.dir/time_series.cpp.o"
  "CMakeFiles/heb_util.dir/time_series.cpp.o.d"
  "libheb_util.a"
  "libheb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for heb_util.
# This may be replaced when dependencies are built.

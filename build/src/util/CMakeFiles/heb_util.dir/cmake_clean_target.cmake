file(REMOVE_RECURSE
  "libheb_util.a"
)

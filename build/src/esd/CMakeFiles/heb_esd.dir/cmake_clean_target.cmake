file(REMOVE_RECURSE
  "libheb_esd.a"
)

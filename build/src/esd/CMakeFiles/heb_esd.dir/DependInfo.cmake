
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esd/bank_builder.cpp" "src/esd/CMakeFiles/heb_esd.dir/bank_builder.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/bank_builder.cpp.o.d"
  "/root/repo/src/esd/battery.cpp" "src/esd/CMakeFiles/heb_esd.dir/battery.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/battery.cpp.o.d"
  "/root/repo/src/esd/efficiency_meter.cpp" "src/esd/CMakeFiles/heb_esd.dir/efficiency_meter.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/efficiency_meter.cpp.o.d"
  "/root/repo/src/esd/esd_pool.cpp" "src/esd/CMakeFiles/heb_esd.dir/esd_pool.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/esd_pool.cpp.o.d"
  "/root/repo/src/esd/lifetime_model.cpp" "src/esd/CMakeFiles/heb_esd.dir/lifetime_model.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/lifetime_model.cpp.o.d"
  "/root/repo/src/esd/peukert_battery.cpp" "src/esd/CMakeFiles/heb_esd.dir/peukert_battery.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/peukert_battery.cpp.o.d"
  "/root/repo/src/esd/rainflow.cpp" "src/esd/CMakeFiles/heb_esd.dir/rainflow.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/rainflow.cpp.o.d"
  "/root/repo/src/esd/supercapacitor.cpp" "src/esd/CMakeFiles/heb_esd.dir/supercapacitor.cpp.o" "gcc" "src/esd/CMakeFiles/heb_esd.dir/supercapacitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for heb_esd.
# This may be replaced when dependencies are built.

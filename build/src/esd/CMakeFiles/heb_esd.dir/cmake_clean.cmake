file(REMOVE_RECURSE
  "CMakeFiles/heb_esd.dir/bank_builder.cpp.o"
  "CMakeFiles/heb_esd.dir/bank_builder.cpp.o.d"
  "CMakeFiles/heb_esd.dir/battery.cpp.o"
  "CMakeFiles/heb_esd.dir/battery.cpp.o.d"
  "CMakeFiles/heb_esd.dir/efficiency_meter.cpp.o"
  "CMakeFiles/heb_esd.dir/efficiency_meter.cpp.o.d"
  "CMakeFiles/heb_esd.dir/esd_pool.cpp.o"
  "CMakeFiles/heb_esd.dir/esd_pool.cpp.o.d"
  "CMakeFiles/heb_esd.dir/lifetime_model.cpp.o"
  "CMakeFiles/heb_esd.dir/lifetime_model.cpp.o.d"
  "CMakeFiles/heb_esd.dir/peukert_battery.cpp.o"
  "CMakeFiles/heb_esd.dir/peukert_battery.cpp.o.d"
  "CMakeFiles/heb_esd.dir/rainflow.cpp.o"
  "CMakeFiles/heb_esd.dir/rainflow.cpp.o.d"
  "CMakeFiles/heb_esd.dir/supercapacitor.cpp.o"
  "CMakeFiles/heb_esd.dir/supercapacitor.cpp.o.d"
  "libheb_esd.a"
  "libheb_esd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_esd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

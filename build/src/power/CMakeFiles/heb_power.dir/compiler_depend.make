# Empty compiler generated dependencies file for heb_power.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/ats.cpp" "src/power/CMakeFiles/heb_power.dir/ats.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/ats.cpp.o.d"
  "/root/repo/src/power/converter.cpp" "src/power/CMakeFiles/heb_power.dir/converter.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/converter.cpp.o.d"
  "/root/repo/src/power/ipdu.cpp" "src/power/CMakeFiles/heb_power.dir/ipdu.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/ipdu.cpp.o.d"
  "/root/repo/src/power/power_switch.cpp" "src/power/CMakeFiles/heb_power.dir/power_switch.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/power_switch.cpp.o.d"
  "/root/repo/src/power/solar_array.cpp" "src/power/CMakeFiles/heb_power.dir/solar_array.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/solar_array.cpp.o.d"
  "/root/repo/src/power/topology.cpp" "src/power/CMakeFiles/heb_power.dir/topology.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/topology.cpp.o.d"
  "/root/repo/src/power/utility_grid.cpp" "src/power/CMakeFiles/heb_power.dir/utility_grid.cpp.o" "gcc" "src/power/CMakeFiles/heb_power.dir/utility_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

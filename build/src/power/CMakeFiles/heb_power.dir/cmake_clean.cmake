file(REMOVE_RECURSE
  "CMakeFiles/heb_power.dir/ats.cpp.o"
  "CMakeFiles/heb_power.dir/ats.cpp.o.d"
  "CMakeFiles/heb_power.dir/converter.cpp.o"
  "CMakeFiles/heb_power.dir/converter.cpp.o.d"
  "CMakeFiles/heb_power.dir/ipdu.cpp.o"
  "CMakeFiles/heb_power.dir/ipdu.cpp.o.d"
  "CMakeFiles/heb_power.dir/power_switch.cpp.o"
  "CMakeFiles/heb_power.dir/power_switch.cpp.o.d"
  "CMakeFiles/heb_power.dir/solar_array.cpp.o"
  "CMakeFiles/heb_power.dir/solar_array.cpp.o.d"
  "CMakeFiles/heb_power.dir/topology.cpp.o"
  "CMakeFiles/heb_power.dir/topology.cpp.o.d"
  "CMakeFiles/heb_power.dir/utility_grid.cpp.o"
  "CMakeFiles/heb_power.dir/utility_grid.cpp.o.d"
  "libheb_power.a"
  "libheb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libheb_power.a"
)

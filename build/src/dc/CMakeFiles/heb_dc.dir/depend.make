# Empty dependencies file for heb_dc.
# This may be replaced when dependencies are built.

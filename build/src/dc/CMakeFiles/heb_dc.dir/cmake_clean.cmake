file(REMOVE_RECURSE
  "CMakeFiles/heb_dc.dir/cluster.cpp.o"
  "CMakeFiles/heb_dc.dir/cluster.cpp.o.d"
  "CMakeFiles/heb_dc.dir/server.cpp.o"
  "CMakeFiles/heb_dc.dir/server.cpp.o.d"
  "libheb_dc.a"
  "libheb_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

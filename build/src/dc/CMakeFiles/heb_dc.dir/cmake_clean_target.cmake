file(REMOVE_RECURSE
  "libheb_dc.a"
)

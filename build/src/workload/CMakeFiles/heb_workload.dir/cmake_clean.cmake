file(REMOVE_RECURSE
  "CMakeFiles/heb_workload.dir/composite_workload.cpp.o"
  "CMakeFiles/heb_workload.dir/composite_workload.cpp.o.d"
  "CMakeFiles/heb_workload.dir/google_trace.cpp.o"
  "CMakeFiles/heb_workload.dir/google_trace.cpp.o.d"
  "CMakeFiles/heb_workload.dir/peak_shapes.cpp.o"
  "CMakeFiles/heb_workload.dir/peak_shapes.cpp.o.d"
  "CMakeFiles/heb_workload.dir/trace_workload.cpp.o"
  "CMakeFiles/heb_workload.dir/trace_workload.cpp.o.d"
  "CMakeFiles/heb_workload.dir/workload_profiles.cpp.o"
  "CMakeFiles/heb_workload.dir/workload_profiles.cpp.o.d"
  "libheb_workload.a"
  "libheb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/composite_workload.cpp" "src/workload/CMakeFiles/heb_workload.dir/composite_workload.cpp.o" "gcc" "src/workload/CMakeFiles/heb_workload.dir/composite_workload.cpp.o.d"
  "/root/repo/src/workload/google_trace.cpp" "src/workload/CMakeFiles/heb_workload.dir/google_trace.cpp.o" "gcc" "src/workload/CMakeFiles/heb_workload.dir/google_trace.cpp.o.d"
  "/root/repo/src/workload/peak_shapes.cpp" "src/workload/CMakeFiles/heb_workload.dir/peak_shapes.cpp.o" "gcc" "src/workload/CMakeFiles/heb_workload.dir/peak_shapes.cpp.o.d"
  "/root/repo/src/workload/trace_workload.cpp" "src/workload/CMakeFiles/heb_workload.dir/trace_workload.cpp.o" "gcc" "src/workload/CMakeFiles/heb_workload.dir/trace_workload.cpp.o.d"
  "/root/repo/src/workload/workload_profiles.cpp" "src/workload/CMakeFiles/heb_workload.dir/workload_profiles.cpp.o" "gcc" "src/workload/CMakeFiles/heb_workload.dir/workload_profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for heb_workload.
# This may be replaced when dependencies are built.

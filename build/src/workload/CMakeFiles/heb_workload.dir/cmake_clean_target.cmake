file(REMOVE_RECURSE
  "libheb_workload.a"
)

# Empty dependencies file for heb_core.
# This may be replaced when dependencies are built.

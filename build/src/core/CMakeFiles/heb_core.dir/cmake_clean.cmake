file(REMOVE_RECURSE
  "CMakeFiles/heb_core.dir/controller.cpp.o"
  "CMakeFiles/heb_core.dir/controller.cpp.o.d"
  "CMakeFiles/heb_core.dir/load_assignment.cpp.o"
  "CMakeFiles/heb_core.dir/load_assignment.cpp.o.d"
  "CMakeFiles/heb_core.dir/pat.cpp.o"
  "CMakeFiles/heb_core.dir/pat.cpp.o.d"
  "CMakeFiles/heb_core.dir/predictor.cpp.o"
  "CMakeFiles/heb_core.dir/predictor.cpp.o.d"
  "CMakeFiles/heb_core.dir/profiler.cpp.o"
  "CMakeFiles/heb_core.dir/profiler.cpp.o.d"
  "CMakeFiles/heb_core.dir/ride_through.cpp.o"
  "CMakeFiles/heb_core.dir/ride_through.cpp.o.d"
  "CMakeFiles/heb_core.dir/schemes.cpp.o"
  "CMakeFiles/heb_core.dir/schemes.cpp.o.d"
  "libheb_core.a"
  "libheb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libheb_core.a"
)

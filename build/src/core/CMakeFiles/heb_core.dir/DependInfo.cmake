
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/heb_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/load_assignment.cpp" "src/core/CMakeFiles/heb_core.dir/load_assignment.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/load_assignment.cpp.o.d"
  "/root/repo/src/core/pat.cpp" "src/core/CMakeFiles/heb_core.dir/pat.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/pat.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/heb_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/heb_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/ride_through.cpp" "src/core/CMakeFiles/heb_core.dir/ride_through.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/ride_through.cpp.o.d"
  "/root/repo/src/core/schemes.cpp" "src/core/CMakeFiles/heb_core.dir/schemes.cpp.o" "gcc" "src/core/CMakeFiles/heb_core.dir/schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/heb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/esd/CMakeFiles/heb_esd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/heb_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Fleet scale-out bench: single-process event engine vs the
 * fork()-based sharded runner (DESIGN.md §15) on a large fleet.
 *
 * Default scenario is 512 racks x 196 servers x a simulated week
 * (~100k servers); --quick shrinks it to 64 racks x 32 servers x
 * 6 h for CI smoke runs. Three legs:
 *
 *   1. event + shards  (run first: the children fork from a parent
 *      that has not yet built any domains, so each child's maxrss
 *      reflects only its own rack range — the flat-memory figure)
 *   2. event, single process
 *   3. dense, single process (--with-dense; on by default in
 *      --quick, off at full scale where dense is ~10x event)
 *
 * The full fleet result JSON of legs 1 and 2 is byte-compared —
 * the scale-out identity witness — and exit status is non-zero on
 * any difference. The dense leg is compared on the physics prefix
 * only (engine counters legitimately differ between engines).
 * Timing, throughput and per-process peak-RSS figures land in
 * BENCH_fleet_scale.json.
 *
 * Usage:
 *   fleet_scale [--quick] [--racks N] [--servers N] [--hours H]
 *               [--shards N] [--jobs N] [--with-dense] [--out FILE]
 *
 * --jobs is the thread width *per process* (default 1, isolating
 * process-level scaling in the shards-vs-single comparison).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "sim/fleet_shard.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Calm phase-structured profile (see fleet_perf.cpp). */
ProfileParams
rackProfile(std::size_t rack, double high_util)
{
    ProfileParams p;
    p.name = "R" + std::to_string(rack);
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

struct Scenario
{
    SimConfig cfg;
    double facilityBudgetW = 0.0;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
};

Scenario
buildScenario(std::size_t racks, std::size_t servers, double hours)
{
    Scenario s;
    s.cfg.numServers = servers;
    double bank_scale = static_cast<double>(servers) / 6.0;
    s.cfg.scEnergyWh *= bank_scale;
    s.cfg.baEnergyWh *= bank_scale;
    s.cfg.durationSeconds = hours * 3600.0;
    s.cfg.faultInjection = true;
    s.cfg.faultPlan.atsFailuresPerDay = 0.0;
    s.cfg.recordSeries = false; // slim: memory flat in rack count
    s.facilityBudgetW = 45.0 * static_cast<double>(servers) *
                        static_cast<double>(racks);
    for (std::size_t r = 0; r < racks; ++r) {
        double high = 0.10 + 0.05 * static_cast<double>(r % 5);
        s.workloads.push_back(std::make_unique<SyntheticWorkload>(
            rackProfile(r, high), s.cfg.seed + r));
    }
    return s;
}

/** Run one leg and return the full fleet-result JSON witness. */
std::string
runLeg(const Scenario &s, FleetMode mode, std::size_t shards,
       FleetResult *agg)
{
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    for (std::size_t r = 0; r < s.workloads.size(); ++r) {
        schemes.push_back(makeScheme(SchemeKind::HebD));
        specs.push_back(RackSpec{"rack" + std::to_string(r),
                                 s.workloads[r].get(),
                                 schemes[r].get()});
    }
    FleetOptions options{BudgetPolicy::Proportional, mode, false};
    options.shards = shards;
    FleetSimulator fleet(s.cfg, s.facilityBudgetW, options);
    FleetResult result = fleet.run(specs);
    std::string json = fleetResultToJson(result);
    if (agg)
        *agg = std::move(result);
    return json;
}

/**
 * Physics prefix of a fleet-result JSON: everything before the
 * engine counters ("macro_spans" onward), i.e. the served/unserved
 * energy, downtime, facility peak and efficiency fields that must
 * agree across *engines*, not just across process layouts.
 */
std::string
physicsPrefix(const std::string &json)
{
    std::size_t cut = json.find("\"macro_spans\"");
    return cut == std::string::npos ? json : json.substr(0, cut);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool with_dense = false;
    bool with_dense_set = false;
    std::size_t racks = 512;
    std::size_t servers = 196;
    double hours = 168.0;
    std::size_t shards = 4;
    std::size_t jobs = 1;
    std::string out_path = "BENCH_fleet_scale.json";

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--racks")) {
            racks = static_cast<std::size_t>(
                std::stoul(need_value("--racks")));
        } else if (!std::strcmp(argv[i], "--servers")) {
            servers = static_cast<std::size_t>(
                std::stoul(need_value("--servers")));
        } else if (!std::strcmp(argv[i], "--hours")) {
            hours = std::stod(need_value("--hours"));
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = static_cast<std::size_t>(
                std::stoul(need_value("--shards")));
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = static_cast<std::size_t>(
                std::stoul(need_value("--jobs")));
        } else if (!std::strcmp(argv[i], "--with-dense")) {
            with_dense = true;
            with_dense_set = true;
        } else if (!std::strcmp(argv[i], "--out")) {
            out_path = need_value("--out");
        } else {
            fatal("usage: fleet_scale [--quick] [--racks N] "
                  "[--servers N] [--hours H] [--shards N] "
                  "[--jobs N] [--with-dense] [--out FILE]; got '",
                  argv[i], "'");
        }
    }
    if (quick) {
        racks = 64;
        servers = 32;
        hours = 6.0;
        if (!with_dense_set)
            with_dense = true;
    }
    if (racks < 2 || servers == 0 || hours <= 0.0 || shards < 2 ||
        jobs == 0)
        fatal("fleet_scale: need racks >= 2, servers >= 1, "
              "hours > 0, shards >= 2, jobs >= 1");
    shards = std::min(shards, racks);

    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
    ThreadPool::configureGlobal(jobs);

    Scenario s = buildScenario(racks, servers, hours);
    const double rack_ticks = static_cast<double>(racks) *
                              s.cfg.durationSeconds /
                              s.cfg.tickSeconds;
    std::printf("fleet_scale: %zu racks x %zu servers x %.0f h "
                "(%.0fk servers, %.0fM rack-ticks), %zu shards, "
                "%zu jobs/process\n",
                racks, servers, hours,
                static_cast<double>(racks * servers) / 1e3,
                rack_ticks / 1e6, shards, jobs);

    // Leg 1: sharded. First so the children fork from a parent with
    // no domain state — their maxrss is their own rack range's.
    FleetResult shard_agg;
    auto t0 = std::chrono::steady_clock::now();
    std::string shard_json =
        runLeg(s, FleetMode::Event, shards, &shard_agg);
    double shard_s = wallSeconds(t0);
    std::uint64_t shard_rss_max = 0;
    for (std::uint64_t b : shard_agg.shardPeakRssBytes)
        shard_rss_max = std::max(shard_rss_max, b);
    std::printf("event+%zu shards: %8.2f s  (%.2fM rack-ticks/s), "
                "max shard rss %.0f MB\n",
                shards, shard_s, rack_ticks / shard_s / 1e6,
                static_cast<double>(shard_rss_max) / 1e6);

    // Leg 2: single-process event engine.
    FleetResult event_agg;
    t0 = std::chrono::steady_clock::now();
    std::string event_json =
        runLeg(s, FleetMode::Event, 1, &event_agg);
    double event_s = wallSeconds(t0);
    std::uint64_t single_rss = peakRssBytes();
    std::printf("event (1 proc):  %8.2f s  (%.2fM rack-ticks/s), "
                "process rss %.0f MB\n",
                event_s, rack_ticks / event_s / 1e6,
                static_cast<double>(single_rss) / 1e6);

    // Leg 3 (optional): the dense witness.
    double dense_s = 0.0;
    bool physics_match_dense = true;
    if (with_dense) {
        t0 = std::chrono::steady_clock::now();
        std::string dense_json =
            runLeg(s, FleetMode::Dense, 1, nullptr);
        dense_s = wallSeconds(t0);
        physics_match_dense = physicsPrefix(dense_json) ==
                              physicsPrefix(event_json);
        std::printf("dense (1 proc):  %8.2f s  (%.2fM "
                    "rack-ticks/s), physics %s\n",
                    dense_s, rack_ticks / dense_s / 1e6,
                    physics_match_dense ? "match" : "DIFFER");
    }

    bool identical = shard_json == event_json;
    double speedup = shard_s > 0.0 ? event_s / shard_s : 0.0;
    std::printf("event+shards over event: %.2fx, result JSON %s\n",
                speedup,
                identical ? "byte-identical" : "DIFFERS");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += ",\n";
    };
    field("racks", static_cast<double>(racks));
    field("servers_per_rack", static_cast<double>(servers));
    field("sim_hours", hours);
    field("rack_ticks", rack_ticks);
    field("shards", static_cast<double>(shards));
    field("jobs_per_process", static_cast<double>(jobs));
    field("event_seconds", event_s);
    field("event_shards_seconds", shard_s);
    field("dense_seconds", dense_s);
    field("rack_ticks_per_second_event", rack_ticks / event_s);
    field("rack_ticks_per_second_event_shards",
          rack_ticks / shard_s);
    field("speedup_shards", speedup);
    field("macro_spans",
          static_cast<double>(event_agg.macroSpans));
    field("macro_span_ticks",
          static_cast<double>(event_agg.macroSpanTicks));
    field("dense_ticks",
          static_cast<double>(event_agg.denseTicks));
    field("single_process_peak_rss_bytes",
          static_cast<double>(single_rss));
    field("shard_peak_rss_max_bytes",
          static_cast<double>(shard_rss_max));
    json += "  \"shard_peak_rss_bytes\": [";
    for (std::size_t i = 0;
         i < shard_agg.shardPeakRssBytes.size(); ++i) {
        if (i)
            json += ", ";
        json += std::to_string(shard_agg.shardPeakRssBytes[i]);
    }
    json += "],\n  \"with_dense\": ";
    json += with_dense ? "true" : "false";
    json += ",\n  \"physics_match_dense\": ";
    json += physics_match_dense ? "true" : "false";
    json += ",\n  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    if (!writeFileAtomic(out_path, json))
        fatal("cannot write ", out_path);
    std::printf("wrote %s\n", out_path.c_str());

    return identical && physics_match_dense ? 0 : 1;
}

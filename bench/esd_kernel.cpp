/**
 * @file
 * ESD kernel throughput bench: scalar vs SoA-batched stepping.
 *
 * Builds a 64-string battery pool and a 64-module SC pool, drives
 * both through a deterministic discharge/charge/rest duty cycle once
 * with batching disabled (per-device virtual stepping) and once with
 * batching enabled (struct-of-arrays kernels), fingerprints every
 * device's final state at %.17g, and writes a BENCH_esd.json perf
 * artifact. Exit status is non-zero when the fingerprints differ in
 * any byte — bit-identity is the batching layer's core contract
 * (DESIGN.md §13), so it is asserted here as well as in the tests.
 *
 * Usage:
 *   esd_kernel [--quick] [--members N] [--ticks N] [--reps N]
 *              [--out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "esd/bank_builder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/mem.h"

using namespace heb;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One pool's duty cycle: 120 s discharge, 140 s charge, 20 s rest. */
void
runDuty(EsdPool &pool, std::size_t ticks, double watts_scale)
{
    const double dt = 1.0;
    for (std::size_t j = 0; j < ticks; ++j) {
        // Deterministic tick-to-tick wobble so the proportional split
        // and the KiBaM/SC rate limits see a range of operating
        // points instead of one steady state.
        double frac =
            0.25 + 0.5 * (static_cast<double>(j % 97) / 96.0);
        std::size_t phase = j % 280;
        if (phase < 120)
            pool.discharge(watts_scale * frac, dt);
        else if (phase < 260)
            pool.charge(watts_scale * frac, dt);
        else
            pool.rest(dt);
    }
}

/** Full %.17g fingerprint of every member device. */
std::string
fingerprint(EsdPool &pool)
{
    std::string out;
    char buf[256];
    auto add = [&](const char *tag, double v) {
        std::snprintf(buf, sizeof buf, "%s=%.17g\n", tag, v);
        out += buf;
    };
    add("pool.soc", pool.soc());
    add("pool.usable_wh", pool.usableEnergyWh());
    add("pool.max_discharge_w", pool.maxDischargePowerW(1.0));
    add("pool.terminal_v", pool.terminalVoltage(100.0));
    const EsdCounters &pc = pool.counters();
    add("pool.discharge_wh", pc.dischargeEnergyWh);
    add("pool.charge_wh", pc.chargeEnergyWh);
    add("pool.loss_wh", pc.lossEnergyWh);
    for (std::size_t i = 0; i < pool.deviceCount(); ++i) {
        const EnergyStorageDevice &d =
            const_cast<const EsdPool &>(pool).device(i);
        std::snprintf(buf, sizeof buf, "[%zu] ", i);
        out += buf;
        add("soc", d.soc());
        add("usable_wh", d.usableEnergyWh());
        add("discharge_wh", d.counters().dischargeEnergyWh);
        add("charge_wh", d.counters().chargeEnergyWh);
        add("loss_wh", d.counters().lossEnergyWh);
        add("discharge_ah", d.counters().dischargeAh);
        add("charge_ah", d.counters().chargeAh);
        std::snprintf(buf, sizeof buf, "dir_changes=%lu\n",
                      d.counters().directionChanges);
        out += buf;
        add("lifetime", d.lifetimeFractionUsed());
    }
    return out;
}

struct LegResult
{
    double seconds = 0.0;
    std::string print;
    std::size_t batchedLanes = 0;
};

/**
 * Time one leg @p reps times and keep the best wall time. The duty
 * cycle is deterministic, so every repetition must fingerprint
 * identically — asserted here — and best-of-N filters out scheduler
 * noise that would otherwise make the CI speedup gate flaky.
 */
LegResult
runLeg(bool batched, bool battery, std::size_t members,
       std::size_t ticks, std::size_t reps)
{
    LegResult leg;
    for (std::size_t r = 0; r < reps; ++r) {
        setSoaBatchingEnabled(batched);
        std::unique_ptr<EsdPool> pool =
            battery
                ? makeBatteryBank(400.0 * static_cast<double>(members),
                                  0.8, members, false)
                : makeScBank(30.0 * static_cast<double>(members), 1.0,
                             members);
        leg.batchedLanes = pool->batchedLaneCount();
        double watts =
            (battery ? 18.0 : 45.0) * static_cast<double>(members);
        auto t0 = std::chrono::steady_clock::now();
        runDuty(*pool, ticks, watts);
        double seconds = wallSeconds(t0);
        std::string print = fingerprint(*pool);
        setSoaBatchingEnabled(true);
        if (r == 0) {
            leg.seconds = seconds;
            leg.print = std::move(print);
        } else {
            leg.seconds = std::min(leg.seconds, seconds);
            if (print != leg.print)
                fatal("nondeterministic repetition in ",
                      battery ? "battery" : "sc",
                      batched ? " batched" : " scalar", " leg");
        }
    }
    return leg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::size_t members = 64;
    std::size_t ticks = 0;
    std::size_t reps = 3;
    std::string out_path = "BENCH_esd.json";

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--members")) {
            if (i + 1 >= argc)
                fatal("--members requires a value");
            members = static_cast<std::size_t>(
                std::stoul(argv[++i]));
        } else if (!std::strcmp(argv[i], "--ticks")) {
            if (i + 1 >= argc)
                fatal("--ticks requires a value");
            ticks =
                static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (!std::strcmp(argv[i], "--reps")) {
            if (i + 1 >= argc)
                fatal("--reps requires a value");
            reps =
                static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (!std::strcmp(argv[i], "--out")) {
            if (i + 1 >= argc)
                fatal("--out requires a value");
            out_path = argv[++i];
        } else {
            fatal("usage: esd_kernel [--quick] [--members N] "
                  "[--ticks N] [--reps N] [--out FILE]; got '",
                  argv[i], "'");
        }
    }
    if (members == 0)
        fatal("--members must be >= 1");
    if (reps == 0)
        fatal("--reps must be >= 1");
    if (ticks == 0)
        ticks = quick ? 40000 : 200000;

    obs::setTelemetryLevel(obs::TelemetryLevel::Off);

    std::printf("esd_kernel: %zu members x %zu ticks per pool, "
                "best of %zu\n",
                members, ticks, reps);

    // Warm-up leg (untimed): touches the allocator and page-faults
    // the code paths once so neither timed leg pays first-run costs.
    runLeg(true, true, members, std::min<std::size_t>(ticks, 2000),
           1);

    LegResult ba_scalar = runLeg(false, true, members, ticks, reps);
    LegResult ba_batched = runLeg(true, true, members, ticks, reps);
    LegResult sc_scalar = runLeg(false, false, members, ticks, reps);
    LegResult sc_batched = runLeg(true, false, members, ticks, reps);

    if (ba_scalar.batchedLanes != 0 || sc_scalar.batchedLanes != 0)
        fatal("scalar legs unexpectedly batched");
    if (ba_batched.batchedLanes != members ||
        sc_batched.batchedLanes != members)
        fatal("batched legs did not batch every member");

    bool ba_same = ba_scalar.print == ba_batched.print;
    bool sc_same = sc_scalar.print == sc_batched.print;
    bool identical = ba_same && sc_same;

    double steps =
        static_cast<double>(members) * static_cast<double>(ticks);
    double ba_speedup = ba_batched.seconds > 0.0
                            ? ba_scalar.seconds / ba_batched.seconds
                            : 0.0;
    double sc_speedup = sc_batched.seconds > 0.0
                            ? sc_scalar.seconds / sc_batched.seconds
                            : 0.0;
    double scalar_s = ba_scalar.seconds + sc_scalar.seconds;
    double batched_s = ba_batched.seconds + sc_batched.seconds;
    double speedup = batched_s > 0.0 ? scalar_s / batched_s : 0.0;

    std::printf("battery: scalar %6.3f s, batched %6.3f s "
                "(%4.2fx, %5.2fM dev-steps/s) %s\n",
                ba_scalar.seconds, ba_batched.seconds, ba_speedup,
                steps / ba_batched.seconds / 1e6,
                ba_same ? "identical" : "DIFFER");
    std::printf("sc:      scalar %6.3f s, batched %6.3f s "
                "(%4.2fx, %5.2fM dev-steps/s) %s\n",
                sc_scalar.seconds, sc_batched.seconds, sc_speedup,
                steps / sc_batched.seconds / 1e6,
                sc_same ? "identical" : "DIFFER");
    std::printf("total:   %4.2fx, results %s\n", speedup,
                identical ? "byte-identical" : "DIFFER");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += ",\n";
    };
    field("members", static_cast<double>(members));
    field("ticks", static_cast<double>(ticks));
    field("device_steps", steps);
    field("battery_scalar_seconds", ba_scalar.seconds);
    field("battery_batched_seconds", ba_batched.seconds);
    field("battery_speedup", ba_speedup);
    field("battery_steps_per_second_batched",
          steps / ba_batched.seconds);
    field("sc_scalar_seconds", sc_scalar.seconds);
    field("sc_batched_seconds", sc_batched.seconds);
    field("sc_speedup", sc_speedup);
    field("sc_steps_per_second_batched",
          steps / sc_batched.seconds);
    field("scalar_steps_per_second",
          2.0 * steps / (scalar_s > 0.0 ? scalar_s : 1.0));
    field("batched_steps_per_second",
          2.0 * steps / (batched_s > 0.0 ? batched_s : 1.0));
    field("speedup", speedup);
    field("peak_rss_bytes", static_cast<double>(peakRssBytes()));
    json += "  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    if (!writeFileAtomic(out_path, json))
        fatal("cannot write ", out_path);
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 1;
}

/**
 * @file
 * Sweep-engine throughput bench: times a Fig. 12-sized
 * (scheme × workload) grid serially (1 job) and on the shared
 * thread pool, verifies the parallel summaries are bit-identical to
 * the serial ones, and writes a BENCH_sweep.json perf artifact so
 * CI can track the sweep engine's wall-clock trajectory.
 *
 * Usage:
 *   sweep_perf [--quick] [--jobs N] [--out FILE]
 *
 * --quick shrinks the simulated duration for CI smoke runs; --jobs
 * sets the parallel leg's pool width (default HEB_JOBS or the
 * machine's core count); --out overrides the JSON path (default
 * BENCH_sweep.json in the working directory).
 *
 * Exit status is non-zero when the parallel results differ from the
 * serial ones in any bit — determinism is part of the contract, not
 * just speed. Speedup thresholds are enforced by CI, not here, so
 * the bench stays usable on single-core boxes.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/pat_cache.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Bitwise comparison of two summary rows (incl. per-workload). */
bool
identicalSummaries(const std::vector<SchemeSummary> &a,
                   const std::vector<SchemeSummary> &b)
{
    auto same = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof(double)) == 0;
    };
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const SchemeSummary &l = a[i];
        const SchemeSummary &r = b[i];
        if (l.scheme != r.scheme ||
            !same(l.energyEfficiency, r.energyEfficiency) ||
            !same(l.energyEfficiencySmall, r.energyEfficiencySmall) ||
            !same(l.energyEfficiencyLarge, r.energyEfficiencyLarge) ||
            !same(l.downtimeSeconds, r.downtimeSeconds) ||
            !same(l.batteryLifetimeYears, r.batteryLifetimeYears) ||
            !same(l.reu, r.reu) ||
            l.perWorkload.size() != r.perWorkload.size())
            return false;
        for (std::size_t w = 0; w < l.perWorkload.size(); ++w) {
            const SimResult &lr = l.perWorkload[w];
            const SimResult &rr = r.perWorkload[w];
            if (lr.workloadName != rr.workloadName ||
                !same(lr.energyEfficiency, rr.energyEfficiency) ||
                !same(lr.downtimeSeconds, rr.downtimeSeconds) ||
                !same(lr.peakUtilityDrawW, rr.peakUtilityDrawW) ||
                !same(lr.ledger.unservedWh, rr.ledger.unservedWh))
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::size_t jobs = 0; // 0 -> defaultJobs()
    std::string out_path = "BENCH_sweep.json";

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            long n = std::stol(argv[++i]);
            if (n < 1)
                fatal("--jobs must be >= 1");
            jobs = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--out")) {
            if (i + 1 >= argc)
                fatal("--out requires a value");
            out_path = argv[++i];
        } else {
            fatal("usage: sweep_perf [--quick] [--jobs N] "
                  "[--out FILE]; got '",
                  argv[i], "'");
        }
    }
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();

    obs::setTelemetryLevel(obs::TelemetryLevel::Off);

    // The Fig. 12 grid: every scheme over every workload. --quick
    // shortens the simulated span (but keeps it > one predictor
    // season) so the CI smoke run finishes in seconds.
    SimConfig cfg;
    cfg.durationSeconds = (quick ? 4.0 : 24.0) * 3600.0;
    HebSchemeConfig scheme_cfg;
    const auto &workloads = allWorkloadNames();
    const auto &schemes = allSchemeKinds();
    const double grid_ticks =
        static_cast<double>(workloads.size() * schemes.size()) *
        cfg.durationSeconds / cfg.tickSeconds;

    std::printf("sweep_perf: %zu schemes x %zu workloads, %.0f h "
                "simulated per cell\n",
                schemes.size(), workloads.size(),
                cfg.durationSeconds / 3600.0);

    // Warm the PAT seed cache outside the timed region: both legs
    // then pay identical (zero) seeding cost and the measurement is
    // pure sweep-engine throughput.
    SeededPatCache::global().get(cfg, scheme_cfg);

    ThreadPool::configureGlobal(1);
    auto t0 = std::chrono::steady_clock::now();
    auto serial_rows =
        compareSchemes(cfg, workloads, schemes, scheme_cfg);
    double serial_s = wallSeconds(t0);
    std::printf("serial   (1 job):  %7.2f s  (%.2fM ticks/s)\n",
                serial_s, grid_ticks / serial_s / 1e6);

    ThreadPool::configureGlobal(jobs);
    t0 = std::chrono::steady_clock::now();
    auto parallel_rows =
        compareSchemes(cfg, workloads, schemes, scheme_cfg);
    double parallel_s = wallSeconds(t0);
    ThreadPool::configureGlobal(0);
    std::printf("parallel (%zu jobs): %7.2f s  (%.2fM ticks/s)\n",
                jobs, parallel_s, grid_ticks / parallel_s / 1e6);

    bool identical = identicalSummaries(serial_rows, parallel_rows);
    double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    std::printf("speedup: %.2fx, results %s\n", speedup,
                identical ? "bit-identical" : "DIFFER");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value,
                         bool last = false) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += last ? "\n" : ",\n";
    };
    field("schemes", static_cast<double>(schemes.size()));
    field("workloads", static_cast<double>(workloads.size()));
    field("sim_hours_per_cell", cfg.durationSeconds / 3600.0);
    field("grid_ticks", grid_ticks);
    field("jobs", static_cast<double>(jobs));
    field("serial_seconds", serial_s);
    field("parallel_seconds", parallel_s);
    field("ticks_per_second_serial", grid_ticks / serial_s);
    field("ticks_per_second_parallel", grid_ticks / parallel_s);
    field("speedup", speedup);
    json += "  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write ", out_path);
    out << json;
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 1;
}

/**
 * @file
 * Sweep-engine throughput bench: times a Fig. 12-sized
 * (scheme × workload) grid serially (1 job) and on the shared
 * thread pool, verifies the parallel summaries are bit-identical to
 * the serial ones, and writes a BENCH_sweep.json perf artifact so
 * CI can track the sweep engine's wall-clock trajectory.
 *
 * Usage:
 *   sweep_perf [--quick] [--jobs N] [--out FILE] [--fast-forward]
 *
 * --quick shrinks the simulated duration for CI smoke runs; --jobs
 * sets the parallel leg's pool width (default HEB_JOBS or the
 * machine's core count); --out overrides the JSON path (default
 * BENCH_sweep.json in the working directory).
 *
 * --fast-forward switches to the quiescence macro-tick benchmark:
 * an outage-sparse 24 h fault-injection grid (three schemes x fault
 * scenarios on a phase-structured jitter-free workload) is run once
 * densely and once with the event-horizon engine, each cell's
 * SimResult serialized with the round-trip-exact simResultToJson
 * witness and byte-compared. The artifact becomes
 * BENCH_fastforward.json.
 *
 * Exit status is non-zero when the compared results differ in any
 * bit — determinism is part of the contract, not just speed.
 * Speedup thresholds are enforced by CI, not here, so the bench
 * stays usable on single-core boxes.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/pat_cache.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Bitwise comparison of two summary rows (incl. per-workload). */
bool
identicalSummaries(const std::vector<SchemeSummary> &a,
                   const std::vector<SchemeSummary> &b)
{
    auto same = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof(double)) == 0;
    };
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const SchemeSummary &l = a[i];
        const SchemeSummary &r = b[i];
        if (l.scheme != r.scheme ||
            !same(l.energyEfficiency, r.energyEfficiency) ||
            !same(l.energyEfficiencySmall, r.energyEfficiencySmall) ||
            !same(l.energyEfficiencyLarge, r.energyEfficiencyLarge) ||
            !same(l.downtimeSeconds, r.downtimeSeconds) ||
            !same(l.batteryLifetimeYears, r.batteryLifetimeYears) ||
            !same(l.reu, r.reu) ||
            l.perWorkload.size() != r.perWorkload.size())
            return false;
        for (std::size_t w = 0; w < l.perWorkload.size(); ++w) {
            const SimResult &lr = l.perWorkload[w];
            const SimResult &rr = r.perWorkload[w];
            if (lr.workloadName != rr.workloadName ||
                !same(lr.energyEfficiency, rr.energyEfficiency) ||
                !same(lr.downtimeSeconds, rr.downtimeSeconds) ||
                !same(lr.peakUtilityDrawW, rr.peakUtilityDrawW) ||
                !same(lr.ledger.unservedWh, rr.ledger.unservedWh))
                return false;
        }
    }
    return true;
}

/**
 * The fast-forward benchmark scenario: long flat utilization phases
 * that fit under the budget, so the simulation is quiescent for most
 * of its span — the regime datacenter availability studies live in
 * (outages and faults are rare; the interesting physics is bursty).
 * Jitter-free by construction: the stock profiles re-hash jitter on
 * a 5 s grid, which caps any macro-tick at 5 ticks and would turn
 * this into a bench of the bail path.
 */
ProfileParams
fastForwardProfile()
{
    ProfileParams p;
    p.name = "FFCALM";
    p.peakClass = PeakClass::Large;
    p.highUtil = 0.30;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

/**
 * Dense-vs-fast-forward comparison. Returns the exit status: 0 when
 * every cell's SimResult JSON is byte-identical across modes.
 */
int
runFastForwardBench(bool quick, const std::string &out_path)
{
    // The kernel's per-tick work is independent of the server count
    // while the dense tick's demand/telemetry path is O(servers), so
    // a rack-scale cluster is both the realistic and the favourable
    // regime. Budget keeps both phases quiescent (~45 W/server).
    SimConfig cfg;
    cfg.numServers = 128;
    cfg.budgetW = 45.0 * static_cast<double>(cfg.numServers);
    // Banks scale with the cluster (the defaults size a 6-server
    // rack) so the sub-minute outages below still ride through
    // without shedding.
    double bank_scale = static_cast<double>(cfg.numServers) / 6.0;
    cfg.scEnergyWh *= bank_scale;
    cfg.baEnergyWh *= bank_scale;
    cfg.durationSeconds = (quick ? 6.0 : 24.0) * 3600.0;
    cfg.faultInjection = true;
    // Outage-sparse: two sub-minute grid losses near the end of the
    // span. A homogeneous battery bank sag-crashes servers under the
    // full-cluster draw (the paper's Fig. 5 failure), and the
    // restart policy restores one server per 300 s — placing the
    // outages late bounds that long degraded (dense) tail so the
    // bench measures the quiescent regime, not BaOnly's recovery.
    cfg.outages = {{0.90 * cfg.durationSeconds, 45.0},
                   {0.96 * cfg.durationSeconds, 60.0}};
    // ATS transfer failures are additional supply losses at random
    // times; in this outage-sparse scenario supply loss comes only
    // from the explicit outage list above, so a mid-run transfer gap
    // does not re-trigger BaOnly's hours-long restart crawl. Every
    // other fault kind (weak cells, SC aging, converter trips,
    // sensor dropout/jitter) stays at its default daily rate.
    cfg.faultPlan.atsFailuresPerDay = 0.0;

    const std::vector<SchemeKind> schemes = {
        SchemeKind::BaOnly, SchemeKind::ScFirst, SchemeKind::HebD};
    const std::vector<std::uint64_t> fault_seeds =
        quick ? std::vector<std::uint64_t>{1}
              : std::vector<std::uint64_t>{1, 2};

    HebSchemeConfig scheme_cfg;
    PowerAllocationTable pat = buildSeededPat(cfg, scheme_cfg);
    SyntheticWorkload workload(fastForwardProfile(), cfg.seed);

    std::size_t cells = schemes.size() * fault_seeds.size();
    std::printf("sweep_perf --fast-forward: %zu cells (%zu schemes "
                "x %zu fault seeds), %.0f h x %zu servers per "
                "cell\n",
                cells, schemes.size(), fault_seeds.size(),
                cfg.durationSeconds / 3600.0, cfg.numServers);

    auto run_mode = [&](SchemeKind kind, std::uint64_t fault_seed,
                        bool ff) {
        SimConfig c = cfg;
        c.faultSeed = fault_seed;
        c.fastForward = ff;
        auto scheme = makeScheme(kind, scheme_cfg, &pat);
        return simResultToJson(
            Simulator(c).run(workload, *scheme));
    };

    double dense_s = 0.0;
    double ff_s = 0.0;
    bool identical = true;
    for (SchemeKind kind : schemes) {
        for (std::uint64_t fault_seed : fault_seeds) {
            auto t0 = std::chrono::steady_clock::now();
            std::string dense = run_mode(kind, fault_seed, false);
            double cell_dense = wallSeconds(t0);
            dense_s += cell_dense;

            t0 = std::chrono::steady_clock::now();
            std::string ff = run_mode(kind, fault_seed, true);
            double cell_ff = wallSeconds(t0);
            ff_s += cell_ff;

            bool same = dense == ff;
            identical = identical && same;
            std::printf("  %-8s seed %llu: dense %6.3f s, "
                        "fast-forward %6.3f s (%5.1fx) %s\n",
                        schemeKindName(kind),
                        static_cast<unsigned long long>(fault_seed),
                        cell_dense, cell_ff,
                        cell_ff > 0.0 ? cell_dense / cell_ff : 0.0,
                        same ? "identical" : "DIFFER");
        }
    }

    const double cell_ticks = cfg.durationSeconds / cfg.tickSeconds;
    const double grid_ticks =
        static_cast<double>(cells) * cell_ticks;
    double speedup = ff_s > 0.0 ? dense_s / ff_s : 0.0;
    std::printf("total: dense %.2f s, fast-forward %.2f s, speedup "
                "%.2fx, results %s\n",
                dense_s, ff_s, speedup,
                identical ? "byte-identical" : "DIFFER");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += ",\n";
    };
    field("cells", static_cast<double>(cells));
    field("servers", static_cast<double>(cfg.numServers));
    field("sim_hours_per_cell", cfg.durationSeconds / 3600.0);
    field("grid_ticks", grid_ticks);
    field("dense_seconds", dense_s);
    field("fast_forward_seconds", ff_s);
    field("ticks_per_second_dense", grid_ticks / dense_s);
    field("ticks_per_second_fast_forward", grid_ticks / ff_s);
    field("speedup", speedup);
    json += "  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    if (!writeFileAtomic(out_path, json))
        fatal("cannot write ", out_path);
    std::printf("wrote %s\n", out_path.c_str());
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool fast_forward = false;
    std::size_t jobs = 0; // 0 -> defaultJobs()
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--fast-forward")) {
            fast_forward = true;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            long n = std::stol(argv[++i]);
            if (n < 1)
                fatal("--jobs must be >= 1");
            jobs = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--out")) {
            if (i + 1 >= argc)
                fatal("--out requires a value");
            out_path = argv[++i];
        } else {
            fatal("usage: sweep_perf [--quick] [--jobs N] "
                  "[--out FILE] [--fast-forward]; got '",
                  argv[i], "'");
        }
    }
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();
    if (out_path.empty()) {
        out_path = fast_forward ? "BENCH_fastforward.json"
                                : "BENCH_sweep.json";
    }

    obs::setTelemetryLevel(obs::TelemetryLevel::Off);

    if (fast_forward)
        return runFastForwardBench(quick, out_path);

    // The Fig. 12 grid: every scheme over every workload. --quick
    // shortens the simulated span (but keeps it > one predictor
    // season) so the CI smoke run finishes in seconds.
    SimConfig cfg;
    cfg.durationSeconds = (quick ? 4.0 : 24.0) * 3600.0;
    HebSchemeConfig scheme_cfg;
    const auto &workloads = allWorkloadNames();
    const auto &schemes = allSchemeKinds();
    const double grid_ticks =
        static_cast<double>(workloads.size() * schemes.size()) *
        cfg.durationSeconds / cfg.tickSeconds;

    std::printf("sweep_perf: %zu schemes x %zu workloads, %.0f h "
                "simulated per cell\n",
                schemes.size(), workloads.size(),
                cfg.durationSeconds / 3600.0);

    // Warm the PAT seed cache outside the timed region: both legs
    // then pay identical (zero) seeding cost and the measurement is
    // pure sweep-engine throughput.
    SeededPatCache::global().get(cfg, scheme_cfg);

    ThreadPool::configureGlobal(1);
    auto t0 = std::chrono::steady_clock::now();
    auto serial_rows =
        compareSchemes(cfg, workloads, schemes, scheme_cfg);
    double serial_s = wallSeconds(t0);
    std::printf("serial   (1 job):  %7.2f s  (%.2fM ticks/s)\n",
                serial_s, grid_ticks / serial_s / 1e6);

    ThreadPool::configureGlobal(jobs);
    t0 = std::chrono::steady_clock::now();
    auto parallel_rows =
        compareSchemes(cfg, workloads, schemes, scheme_cfg);
    double parallel_s = wallSeconds(t0);
    ThreadPool::configureGlobal(0);
    std::printf("parallel (%zu jobs): %7.2f s  (%.2fM ticks/s)\n",
                jobs, parallel_s, grid_ticks / parallel_s / 1e6);

    bool identical = identicalSummaries(serial_rows, parallel_rows);
    double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    std::printf("speedup: %.2fx, results %s\n", speedup,
                identical ? "bit-identical" : "DIFFER");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value,
                         bool last = false) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += last ? "\n" : ",\n";
    };
    field("schemes", static_cast<double>(schemes.size()));
    field("workloads", static_cast<double>(workloads.size()));
    field("sim_hours_per_cell", cfg.durationSeconds / 3600.0);
    field("grid_ticks", grid_ticks);
    field("jobs", static_cast<double>(jobs));
    field("serial_seconds", serial_s);
    field("parallel_seconds", parallel_s);
    field("ticks_per_second_serial", grid_ticks / serial_s);
    field("ticks_per_second_parallel", grid_ticks / parallel_s);
    field("speedup", speedup);
    json += "  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    if (!writeFileAtomic(out_path, json))
        fatal("cannot write ", out_path);
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 1;
}

/**
 * @file
 * Reproduces paper Figure 3: round-trip/discharge efficiency of SCs
 * vs lead-acid batteries under one, two and four servers of load,
 * including the recovery-effect gain and the offsetting server
 * on/off energy waste. Part B adds the §3.1 charging claim: deep
 * valleys charge SCs fully while the battery's current ceiling
 * strands energy. Part C runs the DESIGN.md ablation — a
 * Peukert-only battery shows no recovery gain.
 */

#include <cstdio>

#include "dc/server.h"
#include "esd/battery.h"
#include "esd/efficiency_meter.h"
#include "esd/peukert_battery.h"
#include "esd/supercapacitor.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace heb;

namespace {

/** Wall power of n prototype servers near full load. */
double
serverLoadW(int servers)
{
    return servers * 65.0;
}

/** Characterization battery: a 12 Ah lead-acid string, so even the
 * four-server load stays inside its current rating. */
BatteryParams
rigBattery()
{
    return BatteryParams::leadAcid24V(12.0);
}

/**
 * One-shot discharge: drain from full until the device can no longer
 * hold the load; returns {delivered/usable fraction, delivered Wh}.
 * The fraction is the paper's "one-time discharging efficiency" —
 * the share of stored energy the device releases in a single pull.
 */
template <typename Device>
std::pair<double, double>
oneShot(Device &dev, double load_w)
{
    double usable = dev.usableEnergyWh();
    double wh = 0.0;
    for (int i = 0; i < 3600 * 8; ++i) {
        double got = dev.discharge(load_w, 1.0);
        wh += energyWh(got, 1.0);
        if (got < load_w * 0.95)
            break;
    }
    return {wh / usable, wh};
}

/**
 * Discharge with recovery pauses: after the one-shot failure the
 * battery rests and is drained again (paper: "given additional
 * discharge cycles and enough recovery time").
 */
template <typename Device>
double
withRecovery(Device &dev, double load_w, int extra_rounds,
             double rest_s)
{
    double wh = oneShot(dev, load_w).second;
    for (int r = 0; r < extra_rounds; ++r) {
        dev.rest(rest_s);
        for (int i = 0; i < 3600 * 8; ++i) {
            double got = dev.discharge(load_w, 1.0);
            wh += energyWh(got, 1.0);
            if (got < load_w * 0.95)
                break;
        }
    }
    return wh;
}

} // namespace

int
main()
{
    std::printf("=== Figure 3: energy efficiency characterization "
                "===\n\n");

    TablePrinter table({"load", "SC released(%)",
                        "BA released(%)", "BA w/ recovery(%)",
                        "recovery gain(%)", "on/off waste(Wh)",
                        "recovered net of waste(Wh)"});

    ServerParams sp;
    for (int servers : {1, 2, 4}) {
        double load = serverLoadW(servers);

        Supercapacitor sc(ScParams::maxwellSeriesBank());
        auto [sc_frac, sc_wh] = oneShot(sc, load);
        (void)sc_wh;

        Battery ba(rigBattery());
        auto [ba_frac, ba_wh] = oneShot(ba, load);

        Battery ba2(rigBattery());
        double usable = ba2.usableEnergyWh();
        double ba_rec_wh = withRecovery(ba2, load, 2, 600.0);

        // Each recovery round restarts the servers once the supply
        // resumes; that boot energy offsets the recovered charge
        // (paper: "nearly half of the recovered energy").
        double boot_waste =
            2.0 * servers * energyWh(sp.bootPowerW, sp.bootTimeS);

        double gain = (ba_rec_wh / ba_wh - 1.0) * 100.0;
        table.addRow(
            {std::to_string(servers) + " server(s)",
             TablePrinter::num(100.0 * sc_frac, 1),
             TablePrinter::num(100.0 * ba_frac, 1),
             TablePrinter::num(100.0 * ba_rec_wh / usable, 1),
             TablePrinter::num(gain, 1),
             TablePrinter::num(boot_waste, 1),
             TablePrinter::num(ba_rec_wh - ba_wh - boot_waste, 1)});
    }
    table.print();

    std::printf("\n--- Part B (§3.1): deep-valley charge absorption, "
                "30 min at 300 W surplus ---\n");
    {
        Supercapacitor sc(ScParams::maxwellSeriesBank());
        sc.setSoc(0.0);
        Battery ba(rigBattery());
        ba.setSoc(0.2);
        double sc_in = 0.0, ba_in = 0.0;
        for (int i = 0; i < 1800; ++i) {
            sc_in += energyWh(sc.charge(300.0, 1.0), 1.0);
            ba_in += energyWh(ba.charge(300.0, 1.0), 1.0);
        }
        TablePrinter t2({"device", "absorbed(Wh)", "of capacity(%)"});
        t2.addRow({"supercap", TablePrinter::num(sc_in, 1),
                   TablePrinter::num(100.0 * sc_in / sc.capacityWh(),
                                     1)});
        t2.addRow({"battery", TablePrinter::num(ba_in, 1),
                   TablePrinter::num(100.0 * ba_in / ba.capacityWh(),
                                     1)});
        t2.print();
    }

    std::printf("\n--- Part C (ablation): KiBaM vs Peukert-only — "
                "the recovery effect is the KiBaM well ---\n");
    {
        Battery kibam(rigBattery());
        double k_wh = withRecovery(kibam, 130.0, 2, 600.0);
        Battery kibam1(rigBattery());
        auto [unused, k1_wh] = oneShot(kibam1, 130.0);
        (void)unused;

        PeukertBattery pk(rigBattery());
        double p_wh = withRecovery(pk, 130.0, 2, 600.0);
        PeukertBattery pk1(rigBattery());
        auto [unused2, p1_wh] = oneShot(pk1, 130.0);
        (void)unused2;

        TablePrinter t3({"model", "one-shot Wh", "w/ recovery Wh",
                         "gain(%)"});
        t3.addRow({"kibam", TablePrinter::num(k1_wh, 1),
                   TablePrinter::num(k_wh, 1),
                   TablePrinter::num((k_wh / k1_wh - 1.0) * 100.0,
                                     1)});
        t3.addRow({"peukert-only", TablePrinter::num(p1_wh, 1),
                   TablePrinter::num(p_wh, 1),
                   TablePrinter::num((p_wh / p1_wh - 1.0) * 100.0,
                                     1)});
        t3.print();
    }

    std::printf("\nPaper reference: SC 90-95%% round trip; lead-acid "
                "<80%%; recovery adds 6-24%% but on/off waste eats "
                "~half of it.\n");
    return 0;
}

/**
 * @file
 * Demand-charge management bench: billed-peak reduction vs the
 * shaving target, and the annualized tariff savings each point
 * earns (the operational mechanism behind Fig. 15c's revenue).
 *
 * The physical feed is generous (400 W); the soft cap rides below
 * it. Targets below the sustainable mean stop paying off because
 * the buffers can no longer recharge between peaks — the knee this
 * bench exposes is exactly the sizing question §7.5 asks.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

int
main()
{
    std::printf("=== Demand-charge management: billed peak vs "
                "shaving target (WC workload, 400 W feed) ===\n\n");

    HebSchemeConfig scheme_cfg;
    SimConfig base;
    base.budgetW = 400.0;
    PowerAllocationTable pat = buildSeededPat(base, scheme_cfg);

    SimResult uncapped =
        runOne(base, "WC", SchemeKind::HebD, scheme_cfg, &pat);

    TablePrinter table({"target(W)", "billed peak(W)", "shaved(W)",
                        "downtime(s)", "buffer->load(Wh)",
                        "annual saving($, 12$/kW-mo)"});
    table.addRow({"none",
                  TablePrinter::num(uncapped.peakUtilityDrawW, 1),
                  "0.0", TablePrinter::num(
                             uncapped.downtimeSeconds, 0),
                  TablePrinter::num(
                      uncapped.ledger.bufferToLoadWh(), 1),
                  "0"});

    for (double target : {275.0, 265.0, 255.0, 245.0}) {
        SimConfig cfg = base;
        cfg.peakShavingTargetW = target;
        SimResult r =
            runOne(cfg, "WC", SchemeKind::HebD, scheme_cfg, &pat);
        double shaved =
            uncapped.peakUtilityDrawW - r.peakUtilityDrawW;
        double annual = shaved / 1000.0 * 12.0 * 12.0;
        table.addRow({TablePrinter::num(target, 0),
                      TablePrinter::num(r.peakUtilityDrawW, 1),
                      TablePrinter::num(shaved, 1),
                      TablePrinter::num(r.downtimeSeconds, 0),
                      TablePrinter::num(
                          r.ledger.bufferToLoadWh(), 1),
                      TablePrinter::num(annual, 0)});
    }
    table.print();

    std::printf("\nReading: the billed peak tracks the target until "
                "the target dips under the workload's sustainable "
                "mean; past that knee the buffers cannot refill and "
                "the draw escapes back toward the feed.\n");
    return 0;
}

/**
 * @file
 * Reproduces paper Figure 13: metric sensitivity to the SC:battery
 * capacity ratio at constant total capacity (all metrics normalized
 * to the 3:7 prototype ratio, HEB-D scheme, all eight workloads).
 *
 * Expected shape: more SC helps every metric; battery lifetime gains
 * the most; efficiency and downtime saturate.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/sweep_cli.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

int
main(int argc, char **argv)
{
    applySweepCliArgs(argc, argv);
    std::printf("=== Figure 13: SC:BA capacity ratio sweep "
                "(constant total, HEB-D, normalized to 3:7) ===\n\n");

    SimConfig base;
    std::vector<std::pair<double, double>> ratios = {
        {1.0, 9.0}, {3.0, 7.0}, {5.0, 5.0}, {7.0, 3.0}};
    auto points = ratioSweep(base, ratios);

    // Locate the 3:7 baseline.
    const RatioPoint *baseline = nullptr;
    for (const auto &p : points) {
        if (p.scParts == 3.0)
            baseline = &p;
    }

    TablePrinter table({"SC:BA", "eff", "downtime(s)", "bat life(y)",
                        "eff norm", "downtime norm", "life norm"});
    for (const auto &p : points) {
        const SchemeSummary &s = p.summary;
        const SchemeSummary &b = baseline->summary;
        double dt_norm = b.downtimeSeconds > 0.0
                             ? s.downtimeSeconds / b.downtimeSeconds
                             : (s.downtimeSeconds > 0.0 ? 99.0 : 1.0);
        table.addRow(
            {TablePrinter::num(p.scParts, 0) + ":" +
                 TablePrinter::num(p.baParts, 0),
             TablePrinter::num(s.energyEfficiency, 3),
             TablePrinter::num(s.downtimeSeconds, 0),
             TablePrinter::num(s.batteryLifetimeYears, 2),
             TablePrinter::num(
                 s.energyEfficiency / b.energyEfficiency, 3),
             TablePrinter::num(dt_norm, 3),
             TablePrinter::num(s.batteryLifetimeYears /
                                   b.batteryLifetimeYears,
                               2)});
    }
    table.print();

    std::printf("\nPaper shape: higher SC share improves all "
                "metrics; battery lifetime improves most; efficiency "
                "and downtime improvements flatten out.\n");
    return 0;
}

/**
 * @file
 * Reproduces paper Figure 4: initial vs amortized cost of storage
 * technologies. The headline: SCs cost 10-30 k$/kWh up front but
 * their per-cycle amortized cost is competitive with NiCd/Li-ion
 * (~0.4 $/kWh/cycle) thanks to >10^5 cycle life.
 */

#include <cstdio>

#include "tco/cost_model.h"
#include "util/table_printer.h"

using namespace heb;

int
main()
{
    std::printf("=== Figure 4: storage technology cost comparison "
                "===\n\n");

    TablePrinter table({"technology", "initial($/kWh)", "cycle life",
                        "round-trip eff", "amortized($/kWh/cycle)"});
    for (const StorageTechnology &t : storageTechnologies()) {
        table.addRow({t.name,
                      TablePrinter::num(t.initialCostPerKwh, 0),
                      TablePrinter::num(t.cycleLife, 0),
                      TablePrinter::num(t.roundTripEfficiency, 2),
                      TablePrinter::num(t.amortizedCostPerKwhCycle(),
                                        4)});
    }
    table.print();

    const auto &sc = findTechnology("supercap");
    const auto &la = findTechnology("lead-acid");
    const auto &li = findTechnology("li-ion");
    std::printf("\nSC initial cost is %.0fx lead-acid, but per cycle "
                "it is %.2fx li-ion and %.1fx lead-acid.\n",
                sc.initialCostPerKwh / la.initialCostPerKwh,
                sc.amortizedCostPerKwhCycle() /
                    li.amortizedCostPerKwhCycle(),
                sc.amortizedCostPerKwhCycle() /
                    la.amortizedCostPerKwhCycle());
    std::printf("Paper reference: SC amortized cost close to "
                "NiCd/Li-ion (~0.4 $/kWh/cycle), above lead-acid.\n");
    return 0;
}

/**
 * @file
 * Hot-path microbenchmarks (google-benchmark): battery/SC step,
 * dispatch, predictor update, PAT lookup, and a full simulator day.
 * These guard the simulator's throughput — a day of 1 s ticks must
 * stay well under a second so the evaluation sweeps remain cheap.
 */

#include <benchmark/benchmark.h>

#include "core/load_assignment.h"
#include "core/pat.h"
#include "core/predictor.h"
#include "core/schemes.h"
#include "esd/battery.h"
#include "esd/supercapacitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

namespace heb {
namespace {

void
BM_BatteryDischargeStep(benchmark::State &state)
{
    Battery b(BatteryParams::prototypeLeadAcid());
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.discharge(40.0, 1.0));
        if (b.soc() < 0.4)
            b.setSoc(1.0);
    }
}
BENCHMARK(BM_BatteryDischargeStep);

// Same step with an alternating dt: every call misses the memoized
// exp(-k*dt) terms. The gap against BM_BatteryDischargeStep (which
// reuses a constant dt, the simulator's actual pattern) is the value
// of the KiBaM step-term cache.
void
BM_BatteryDischargeStepVaryingDt(benchmark::State &state)
{
    Battery b(BatteryParams::prototypeLeadAcid());
    double dt = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.discharge(40.0, dt));
        dt = dt == 1.0 ? 2.0 : 1.0;
        if (b.soc() < 0.4)
            b.setSoc(1.0);
    }
}
BENCHMARK(BM_BatteryDischargeStepVaryingDt);

void
BM_SupercapDischargeStep(benchmark::State &state)
{
    Supercapacitor sc(ScParams::maxwellSeriesBank());
    for (auto _ : state) {
        benchmark::DoNotOptimize(sc.discharge(100.0, 1.0));
        if (sc.soc() < 0.2)
            sc.setSoc(1.0);
    }
}
BENCHMARK(BM_SupercapDischargeStep);

void
BM_DispatchMismatch(benchmark::State &state)
{
    Supercapacitor sc(ScParams::maxwellSeriesBank());
    Battery ba(BatteryParams::prototypeLeadAcid());
    for (auto _ : state) {
        DispatchResult res =
            dispatchMismatch(sc, ba, 140.0, 0.6, 1.0, 140.0);
        benchmark::DoNotOptimize(res);
        if (sc.soc() < 0.2) {
            sc.setSoc(1.0);
            ba.setSoc(1.0);
        }
    }
}
BENCHMARK(BM_DispatchMismatch);

void
BM_HoltWintersObserve(benchmark::State &state)
{
    HoltWintersPredictor p;
    double v = 0.0;
    for (auto _ : state) {
        p.observe(200.0 + v);
        v = v > 100.0 ? 0.0 : v + 1.0;
        benchmark::DoNotOptimize(p.predict());
    }
}
BENCHMARK(BM_HoltWintersObserve);

void
BM_PatLookupSimilar(benchmark::State &state)
{
    PowerAllocationTable pat;
    for (double sc = 0.0; sc <= 30.0; sc += 5.0) {
        for (double ba = 0.0; ba <= 60.0; ba += 10.0) {
            for (double pm = 60.0; pm <= 200.0; pm += 20.0)
                pat.seed(sc, ba, pm, 0.5);
        }
    }
    state.counters["entries"] =
        static_cast<double>(pat.size());
    double key = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pat.lookupSimilar(13.0 + key, 37.0, 143.0));
        key = key > 10.0 ? 0.0 : key + 0.1;
    }
}
BENCHMARK(BM_PatLookupSimilar);

void
BM_WorkloadUtilization(benchmark::State &state)
{
    auto w = makeWorkload("TS");
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(w->utilization(3, t));
        t += 1.0;
    }
}
BENCHMARK(BM_WorkloadUtilization);

void
BM_SimulatorDay(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    for (auto _ : state) {
        auto workload = makeWorkload("WC");
        auto scheme = makeScheme(SchemeKind::HebD);
        SimResult r = Simulator(cfg).run(*workload, *scheme);
        benchmark::DoNotOptimize(r.energyEfficiency);
    }
    state.SetItemsProcessed(state.iterations() * 86400);
}
BENCHMARK(BM_SimulatorDay)->Unit(benchmark::kMillisecond);

// Same day with metrics on, then with full per-tick tracing: the gap
// against BM_SimulatorDay is the telemetry tax. With telemetry Off
// the tick loop must stay within noise (<=2%) of the uninstrumented
// baseline — the hot-path guard is one relaxed atomic load.
void
BM_SimulatorDayMetrics(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    for (auto _ : state) {
        auto workload = makeWorkload("WC");
        auto scheme = makeScheme(SchemeKind::HebD);
        SimResult r = Simulator(cfg).run(*workload, *scheme);
        benchmark::DoNotOptimize(r.energyEfficiency);
    }
    state.SetItemsProcessed(state.iterations() * 86400);
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
}
BENCHMARK(BM_SimulatorDayMetrics)->Unit(benchmark::kMillisecond);

void
BM_SimulatorDayFullTrace(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Full);
    obs::TraceRecorder trace(1 << 16);
    obs::setActiveTrace(&trace);
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;
    for (auto _ : state) {
        auto workload = makeWorkload("WC");
        auto scheme = makeScheme(SchemeKind::HebD);
        SimResult r = Simulator(cfg).run(*workload, *scheme);
        benchmark::DoNotOptimize(r.energyEfficiency);
    }
    state.SetItemsProcessed(state.iterations() * 86400);
    obs::setActiveTrace(nullptr);
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
}
BENCHMARK(BM_SimulatorDayFullTrace)->Unit(benchmark::kMillisecond);

// Pool dispatch overhead: an ordered map of trivial tasks measures
// the fixed cost of the batch machinery (queue, wakeups, completion
// wait) that every sweep cell pays on top of its simulation work.
void
BM_ThreadPoolMapOverhead(benchmark::State &state)
{
    ThreadPool pool(4);
    std::vector<int> items(64);
    for (int i = 0; i < 64; ++i)
        items[static_cast<std::size_t>(i)] = i;
    for (auto _ : state) {
        auto out = pool.map(items, [](int v) { return v * 2; });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolMapOverhead);

// A pool map of real simulation work: eight two-hour runs, the shape
// of one sweep row. Compare items_per_second against a 1-job pool to
// read the machine's usable sweep speedup.
void
BM_ThreadPoolMapSimRuns(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
    ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    SimConfig cfg;
    cfg.durationSeconds = 2.0 * 3600.0;
    const auto &names = allWorkloadNames();
    for (auto _ : state) {
        auto out = pool.map(names, [&](const std::string &w) {
            return runOne(cfg, w, SchemeKind::ScFirst);
        });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(names.size()));
}
BENCHMARK(BM_ThreadPoolMapSimRuns)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CounterAddEnabled(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    auto &c =
        obs::MetricsRegistry::global().counter("bench.counter_add");
    for (auto _ : state)
        c.add(1.5);
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
}
BENCHMARK(BM_CounterAddEnabled);

void
BM_CounterAddDisabled(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
    auto &c =
        obs::MetricsRegistry::global().counter("bench.counter_add");
    for (auto _ : state)
        c.add(1.5);
}
BENCHMARK(BM_CounterAddDisabled);

void
BM_HistogramRecordEnabled(benchmark::State &state)
{
    obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    auto &h = obs::MetricsRegistry::global().histogram(
        "bench.hist_record");
    double v = 0.0;
    for (auto _ : state) {
        h.record(v);
        v = v > 1.0e6 ? 0.0 : v * 1.7 + 1.0;
    }
    obs::setTelemetryLevel(obs::TelemetryLevel::Off);
}
BENCHMARK(BM_HistogramRecordEnabled);

} // namespace
} // namespace heb

BENCHMARK_MAIN();

/**
 * @file
 * Reproduces paper Figure 1(a): maximum-provisioning-power-
 * utilization (MPPU) and capital cost across provisioning levels
 * P1..P4 on a Google-cluster-style power trace.
 *
 * P1 over-provisions at 100 % of nameplate (covers every peak, low
 * utilization); P4 aggressively under-provisions at 40 % (high MPPU,
 * low CAP-EX, frequent mismatches). Capital cost uses the paper's
 * $10-20/W estimate ($15/W midpoint).
 */

#include <cstdio>

#include "util/table_printer.h"
#include "workload/google_trace.h"

using namespace heb;

int
main()
{
    std::printf("=== Figure 1(a): provisioning level vs MPPU and "
                "CAP-EX (synthetic Google-style trace) ===\n\n");

    const double days = 14.0;
    const double nameplate_kw = 1000.0; // a 1 MW cluster
    const double capex_per_watt = 15.0;

    TimeSeries trace = generateGoogleTrace(days, 60.0, 2024);

    struct Level
    {
        const char *name;
        double fraction;
    };
    const Level levels[] = {
        {"P1", 1.0}, {"P2", 0.8}, {"P3", 0.6}, {"P4", 0.4}};

    TablePrinter table({"level", "provision(%)", "MPPU",
                        "capex($M)", "mismatch time(%)",
                        "worst gap(% nameplate)"});
    for (const Level &lv : levels) {
        double m = mppu(trace, lv.fraction);
        double capex =
            lv.fraction * nameplate_kw * 1000.0 * capex_per_watt / 1e6;
        double worst_gap = 0.0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            worst_gap =
                std::max(worst_gap, trace[i] - lv.fraction);
        }
        table.addRow({lv.name,
                      TablePrinter::num(lv.fraction * 100.0, 0),
                      TablePrinter::num(m, 4),
                      TablePrinter::num(capex, 2),
                      TablePrinter::num(m * 100.0, 2),
                      TablePrinter::num(worst_gap * 100.0, 1)});
    }
    table.print();

    std::printf("\nTrace: %.0f days, mean %.2f, p99 %.2f of "
                "nameplate.\n",
                days, trace.mean(), trace.percentile(99.0));
    std::printf("Paper shape: aggressive under-provisioning raises "
                "MPPU and cuts CAP-EX but leaves power mismatches "
                "that must be buffered.\n");
    return 0;
}

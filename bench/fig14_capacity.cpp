/**
 * @file
 * Reproduces paper Figure 14: the effect of total installed buffer
 * capacity, mimicked (as in the paper) by sweeping the usable
 * depth-of-discharge from 40 % to 80 % at a constant 3:7 split.
 *
 * Expected shape: more usable capacity improves efficiency,
 * downtime, lifetime and REU, but sub-linearly.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/sweep_cli.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

int
main(int argc, char **argv)
{
    applySweepCliArgs(argc, argv);
    std::printf("=== Figure 14: capacity growth via DoD sweep "
                "(3:7 split, HEB-D) ===\n\n");

    SimConfig base;
    std::vector<double> dods = {0.4, 0.5, 0.6, 0.7, 0.8};
    auto points = capacitySweep(base, dods);

    TablePrinter table({"DoD", "usable(Wh)", "eff", "downtime(s)",
                        "bat life(y)"});
    for (const auto &p : points) {
        SimConfig cfg = base;
        double usable =
            cfg.scEnergyWh * p.dod + cfg.baEnergyWh * p.dod;
        const SchemeSummary &s = p.summary;
        table.addRow({TablePrinter::num(p.dod * 100.0, 0) + "%",
                      TablePrinter::num(usable, 1),
                      TablePrinter::num(s.energyEfficiency, 3),
                      TablePrinter::num(s.downtimeSeconds, 0),
                      TablePrinter::num(s.batteryLifetimeYears, 2)});
    }
    table.print();

    // REU leg: repeat the sweep against the solar feed.
    std::printf("\nREU vs capacity (solar feed):\n");
    SimConfig solar = base;
    solar.solarPowered = true;
    solar.solarParams.ratedPowerW = 450.0;
    solar.solarParams.pLeaveClear = 0.15;
    solar.solarParams.pLeavePartly = 0.15;
    solar.solarParams.pLeaveOvercast = 0.12;
    auto solar_points = capacitySweep(solar, dods);
    TablePrinter t2({"DoD", "REU"});
    for (const auto &p : solar_points) {
        t2.addRow({TablePrinter::num(p.dod * 100.0, 0) + "%",
                   TablePrinter::num(p.summary.reu, 3)});
    }
    t2.print();

    std::printf("\nPaper shape: larger usable capacity improves "
                "efficiency and resiliency, with diminishing "
                "returns.\n");
    return 0;
}

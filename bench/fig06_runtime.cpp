/**
 * @file
 * Reproduces paper Figure 6: cluster uptime vs the server split
 * between SCs and batteries under constant power demand.
 *
 * Protocol follows the paper: each branch carries exactly its
 * assigned servers; when one storage device depletes, the other
 * takes over the entire load. Expected shape: an interior optimum —
 * leaning too hard on either branch cuts uptime (heavy-SC loses
 * ~25 % in the paper).
 */

#include <chrono>
#include <cstdio>

#include "core/profiler.h"
#include "esd/bank_builder.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace heb;

int
main()
{
    std::printf("=== Figure 6: uptime vs SC/battery load split ===\n"
                "(6 servers, constant demand; strict assignment with "
                "takeover on depletion)\n\n");

    obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    obs::setProfilingEnabled(true);
    obs::RunManifest manifest;
    manifest.tool = "fig06_runtime";
    manifest.startedAtIso = isoTimestampUtc();
    auto wall_start = std::chrono::steady_clock::now();

    ProfilerConfig cfg;
    cfg.ratioSteps = 7; // 0..6 servers on the SC branch
    BufferProfiler profiler(
        []() { return makeScBank(28.8); },
        []() { return makeBatteryBank(67.2); }, cfg);

    for (double mismatch : {110.0, 150.0, 190.0}) {
        RuntimeProfile prof = profiler.profileScenario(1.0, 1.0,
                                                       mismatch);
        std::printf("mismatch %.0f W:\n", mismatch);
        TablePrinter table({"servers on SC", "r", "uptime(s)",
                            "vs best(%)"});
        for (std::size_t i = 0; i < prof.ratios.size(); ++i) {
            table.addRow(
                {std::to_string(i),
                 TablePrinter::num(prof.ratios[i], 2),
                 TablePrinter::num(prof.runtimeSeconds[i], 0),
                 TablePrinter::num(100.0 * prof.runtimeSeconds[i] /
                                       prof.bestRuntime(),
                                   1)});
        }
        table.print();
        std::printf("best split: %zu servers on SC (r=%.2f), uptime "
                    "%.0f s; all-SC achieves %.0f%% of best\n\n",
                    prof.bestIndex, prof.bestRatio(),
                    prof.bestRuntime(),
                    100.0 * prof.runtimeSeconds.back() /
                        prof.bestRuntime());
    }

    manifest.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    obs::MetricsRegistry::global().writeJson("fig06_metrics.json");
    obs::writeRunManifest("fig06_manifest.json", manifest);
    std::printf("--- phase profile ---\n%s\n",
                obs::profileReport().c_str());

    std::printf("Metrics written to fig06_metrics.json, provenance "
                "to fig06_manifest.json.\n");
    std::printf("Paper shape: an interior split maximizes uptime; "
                "assigning heavy load on SCs cuts uptime ~25%%.\n");
    return 0;
}

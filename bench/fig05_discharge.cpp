/**
 * @file
 * Reproduces paper Figure 5: discharge voltage trajectories of the
 * battery vs the SC bank under one, two and four servers.
 *
 * Expected shape: the SC voltage declines linearly regardless of
 * load; the battery holds a plateau but sags sharply under heavy
 * load (and collapses near depletion), which is why batteries must
 * be shielded from large peak mismatches.
 */

#include <chrono>
#include <cstdio>

#include "esd/battery.h"
#include "esd/supercapacitor.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace heb;

int
main()
{
    std::printf("=== Figure 5: discharge voltage curves ===\n\n");

    obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    obs::setProfilingEnabled(true);
    obs::RunManifest manifest;
    manifest.tool = "fig05_discharge";
    manifest.startedAtIso = isoTimestampUtc();
    auto wall_start = std::chrono::steady_clock::now();
    auto &ba_v_hist = obs::MetricsRegistry::global().histogram(
        "bench.fig05.battery_v", {0.5, 2.0, 8});
    auto &sc_v_hist = obs::MetricsRegistry::global().histogram(
        "bench.fig05.sc_v", {0.5, 2.0, 8});

    CsvWriter csv("fig05_discharge.csv");
    csv.header({"seconds", "load_servers", "battery_v", "sc_v"});

    TablePrinter table({"load", "BA step drop(V)", "BA V t=0",
                        "BA V mid", "BA V end", "BA time(s)",
                        "SC V t=0", "SC V mid", "SC V end",
                        "SC linearity err(%)"});

    // Sample each device's own trajectory until *it* fails, so the
    // mid/end points describe that device's discharge, not a shared
    // clock.
    auto run_curve = [](auto &dev, double load) {
        HEB_PROF_SCOPE("bench.fig05.curve");
        std::vector<double> v;
        for (int t = 0; t < 3600 * 6; ++t) {
            double got = dev.discharge(load, 1.0);
            v.push_back(dev.terminalVoltage(load));
            if (got < load * 0.9)
                break;
        }
        return v;
    };

    for (int servers : {1, 2, 4}) {
        double load = servers * 65.0;
        Battery ba(BatteryParams::leadAcid24V(12.0));
        Supercapacitor sc(ScParams::maxwellSeriesBank());

        // Instantaneous sag when the load steps on (vs open circuit).
        double step_drop =
            ba.terminalVoltage(0.0) - ba.terminalVoltage(load);

        std::vector<double> ba_v = run_curve(ba, load);
        std::vector<double> sc_v = run_curve(sc, load);
        for (double v : ba_v)
            ba_v_hist.record(v);
        for (double v : sc_v)
            sc_v_hist.record(v);

        std::size_t pts = std::max(ba_v.size(), sc_v.size());
        for (std::size_t t = 0; t < pts; t += 30) {
            csv.row({static_cast<double>(t),
                     static_cast<double>(servers),
                     t < ba_v.size() ? ba_v[t] : 0.0,
                     t < sc_v.size() ? sc_v[t] : 0.0});
        }

        // SC linearity over its own discharge: midpoint voltage vs
        // the straight line between its endpoints.
        double lin_mid = (sc_v.front() + sc_v.back()) / 2.0;
        double lin_err = 100.0 *
                         std::abs(sc_v[sc_v.size() / 2] - lin_mid) /
                         sc_v.front();

        table.addRow({std::to_string(servers) + " server(s)",
                      TablePrinter::num(step_drop, 2),
                      TablePrinter::num(ba_v.front(), 2),
                      TablePrinter::num(ba_v[ba_v.size() / 2], 2),
                      TablePrinter::num(ba_v.back(), 2),
                      TablePrinter::num(
                          static_cast<double>(ba_v.size()), 0),
                      TablePrinter::num(sc_v.front(), 2),
                      TablePrinter::num(sc_v[sc_v.size() / 2], 2),
                      TablePrinter::num(sc_v.back(), 2),
                      TablePrinter::num(lin_err, 2)});
    }
    table.print();

    manifest.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    obs::MetricsRegistry::global().writeJson("fig05_metrics.json");
    obs::writeRunManifest("fig05_manifest.json", manifest);
    std::printf("\n--- phase profile ---\n%s",
                obs::profileReport().c_str());

    std::printf("\nFull curves written to fig05_discharge.csv; "
                "metrics to fig05_metrics.json, provenance to "
                "fig05_manifest.json.\n");
    std::printf("Paper shape: SC voltage declines ~linearly at every "
                "load; battery voltage drops sharply as load "
                "grows.\n");
    return 0;
}

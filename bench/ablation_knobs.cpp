/**
 * @file
 * Ablation bench (DESIGN.md §6): design choices the paper argues for,
 * isolated one at a time.
 *
 *  A. Mismatch-handling knob: energy buffers (HEB-D) vs DVFS
 *     performance scaling vs both. The paper's §1 position: scaling
 *     "can forcefully cap power mismatches at the cost of
 *     performance degradation"; buffers avoid the penalty.
 *  B. Deployment granularity (Fig. 8): rack-level DC delivery vs
 *     cluster-level with DC/AC conversion vs the centralized
 *     double-converting UPS.
 *  C. Prediction + table quality: HEB-F / HEB-S / HEB-D (also shown
 *     in fig12; repeated here on the stress workload only).
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

SimResult
runCase(SimConfig cfg, SchemeKind kind,
        const PowerAllocationTable *pat,
        const HebSchemeConfig &scheme_cfg)
{
    return runOne(cfg, "TS", kind, scheme_cfg, pat);
}

} // namespace

int
main()
{
    HebSchemeConfig scheme_cfg;
    SimConfig base;
    PowerAllocationTable pat = buildSeededPat(base, scheme_cfg);

    std::printf("=== Ablation A: buffers vs DVFS capping (TS "
                "workload) ===\n");
    {
        TablePrinter t({"config", "downtime(s)", "perf loss(srv-s)",
                        "eff", "buffer->load(Wh)"});

        SimConfig buffers = base;
        SimResult r1 = runCase(buffers, SchemeKind::HebD, &pat,
                               scheme_cfg);
        t.addRow({"buffers only (HEB-D)",
                  TablePrinter::num(r1.downtimeSeconds, 0),
                  TablePrinter::num(r1.perfDegradationServerSeconds,
                                    0),
                  TablePrinter::num(r1.energyEfficiency, 3),
                  TablePrinter::num(r1.ledger.bufferToLoadWh(), 1)});

        SimConfig dvfs = base;
        dvfs.dvfsCapping = true;
        dvfs.scEnergyWh = 0.5; // effectively no buffers
        dvfs.baEnergyWh = 1.0;
        SimResult r2 = runCase(dvfs, SchemeKind::HebD, nullptr,
                               scheme_cfg);
        t.addRow({"DVFS capping only",
                  TablePrinter::num(r2.downtimeSeconds, 0),
                  TablePrinter::num(r2.perfDegradationServerSeconds,
                                    0),
                  TablePrinter::num(r2.energyEfficiency, 3),
                  TablePrinter::num(r2.ledger.bufferToLoadWh(), 1)});

        SimConfig both = base;
        both.dvfsCapping = true;
        SimResult r3 = runCase(both, SchemeKind::HebD, &pat,
                               scheme_cfg);
        t.addRow({"DVFS + buffers",
                  TablePrinter::num(r3.downtimeSeconds, 0),
                  TablePrinter::num(r3.perfDegradationServerSeconds,
                                    0),
                  TablePrinter::num(r3.energyEfficiency, 3),
                  TablePrinter::num(r3.ledger.bufferToLoadWh(), 1)});
        t.print();
        std::printf("Reading: buffers carry the peaks without "
                    "throttling; DVFS trades performance "
                    "(server-seconds at 1.3 GHz) for uptime.\n\n");
    }

    std::printf("=== Ablation B: deployment granularity (Fig. 8) "
                "===\n");
    {
        TablePrinter t({"topology", "eff", "buffer->load(Wh)",
                        "conv loss(Wh)", "downtime(s)"});
        struct Case
        {
            const char *name;
            TopologyKind kind;
            HebDeployment deployment;
        };
        const Case cases[] = {
            {"HEB rack-level (DC)", TopologyKind::HebHybrid,
             HebDeployment::RackLevel},
            {"HEB cluster-level (DC/AC)", TopologyKind::HebHybrid,
             HebDeployment::ClusterLevel},
            {"centralized online UPS", TopologyKind::Centralized,
             HebDeployment::ClusterLevel},
        };
        for (const Case &c : cases) {
            SimConfig cfg = base;
            cfg.topology = c.kind;
            cfg.deployment = c.deployment;
            SimResult r = runCase(cfg, SchemeKind::HebD, &pat,
                                  scheme_cfg);
            t.addRow({c.name,
                      TablePrinter::num(r.energyEfficiency, 3),
                      TablePrinter::num(r.ledger.bufferToLoadWh(), 1),
                      TablePrinter::num(
                          r.ledger.dischargeConversionLossWh +
                              r.ledger.chargeConversionLossWh,
                          1),
                      TablePrinter::num(r.downtimeSeconds, 0)});
        }
        t.print();
        std::printf("Reading: rack-level DC delivery avoids the "
                    "conversion losses the centralized UPS pays on "
                    "every buffered watt (paper §4.1-4.2).\n\n");
    }

    std::printf("=== Ablation C: prediction/table quality on the "
                "stress workload ===\n");
    {
        TablePrinter t({"scheme", "downtime(s)", "eff",
                        "bat life(y)"});
        for (SchemeKind kind : {SchemeKind::HebF, SchemeKind::HebS,
                                SchemeKind::HebD}) {
            SimResult r = runCase(base, kind, &pat, scheme_cfg);
            t.addRow({r.schemeName,
                      TablePrinter::num(r.downtimeSeconds, 0),
                      TablePrinter::num(r.energyEfficiency, 3),
                      TablePrinter::num(r.batteryLifetimeYears, 2)});
        }
        t.print();
    }
    return 0;
}

/**
 * @file
 * Fleet-engine throughput bench: a 64-rack x 128-server x 24 h fleet
 * run dense (the byte-identity witness), with the event engine, and
 * with the event engine plus pooled per-tick fan-out. Every per-rack
 * SimResult is serialized through the round-trip-exact (%.17g)
 * simResultToJson witness and byte-compared against the dense leg;
 * exit status is non-zero on any difference. The timing artifact is
 * written as BENCH_fleet.json so CI can gate the event-vs-dense
 * speedup.
 *
 * Usage:
 *   fleet_perf [--quick] [--jobs N] [--out FILE]
 *
 * --quick shrinks the fleet (8 racks x 32 servers x 6 h) for CI
 * smoke runs; --jobs sets the pooled leg's width (default HEB_JOBS
 * or the machine's core count); --out overrides the JSON path.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Calm phase-structured profile (the regime fleets live in: most
 * racks are quiescent most of the time). Jitter-free so the event
 * horizon is set by phase edges, slot boundaries and fault edges,
 * not a 5 s jitter re-hash grid.
 */
ProfileParams
rackProfile(std::size_t rack, double high_util)
{
    ProfileParams p;
    p.name = "R" + std::to_string(rack);
    p.peakClass = PeakClass::Large;
    p.highUtil = high_util;
    p.lowUtil = 0.05;
    p.highPhaseS = 900.0;
    p.lowPhaseS = 4500.0;
    p.jitter = 0.0;
    p.diurnalDepth = 0.0;
    p.serverStagger = 0.0;
    return p;
}

struct FleetScenario
{
    SimConfig cfg;
    double facilityBudgetW = 0.0;
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
};

FleetScenario
buildScenario(bool quick)
{
    FleetScenario s;
    s.cfg.numServers = quick ? 32 : 128;
    double bank_scale = static_cast<double>(s.cfg.numServers) / 6.0;
    s.cfg.scEnergyWh *= bank_scale;
    s.cfg.baEnergyWh *= bank_scale;
    s.cfg.durationSeconds = (quick ? 6.0 : 24.0) * 3600.0;
    // One shared fault plan stresses the all-or-nothing span logic:
    // converter trips and sensor-jitter windows hit every rack at
    // the same instants. ATS failures are grid-side events the fleet
    // does not model.
    s.cfg.faultInjection = true;
    s.cfg.faultPlan.atsFailuresPerDay = 0.0;

    std::size_t racks = quick ? 8 : 64;
    // ~45 W/server keeps every rack's phases quiescent with charge
    // headroom; the facility feed is the sum of rack budgets.
    s.facilityBudgetW = 45.0 *
                        static_cast<double>(s.cfg.numServers) *
                        static_cast<double>(racks);
    for (std::size_t r = 0; r < racks; ++r) {
        // Utilizations spread over [0.10, 0.30]: asymmetric racks
        // give the proportional arbiter real work every epoch.
        double high = 0.10 + 0.05 * static_cast<double>(r % 5);
        s.workloads.push_back(std::make_unique<SyntheticWorkload>(
            rackProfile(r, high), s.cfg.seed + r));
    }
    return s;
}

/**
 * Run the scenario in @p mode and return the per-rack JSONs (racks
 * are consumed and freed one at a time to bound peak memory — a
 * 24 h x 64-rack result holds ~130 MB of per-tick series).
 */
std::vector<std::string>
runLeg(const FleetScenario &s, FleetMode mode, FleetResult *agg)
{
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    for (std::size_t r = 0; r < s.workloads.size(); ++r) {
        schemes.push_back(makeScheme(SchemeKind::HebD));
        specs.push_back(RackSpec{"rack" + std::to_string(r),
                                 s.workloads[r].get(),
                                 schemes[r].get()});
    }
    FleetSimulator fleet(
        s.cfg, s.facilityBudgetW,
        FleetOptions{BudgetPolicy::Proportional, mode, true});
    FleetResult result = fleet.run(specs);

    std::vector<std::string> json;
    json.reserve(result.racks.size());
    for (SimResult &rack : result.racks) {
        json.push_back(simResultToJson(rack));
        rack = SimResult{};
    }
    result.racks.clear();
    if (agg)
        *agg = std::move(result);
    return json;
}

bool
compareLegs(const std::vector<std::string> &dense,
            const std::vector<std::string> &other, const char *label)
{
    if (dense.size() != other.size()) {
        std::printf("  %s: rack count differs\n", label);
        return false;
    }
    bool identical = true;
    for (std::size_t r = 0; r < dense.size(); ++r) {
        if (dense[r] != other[r]) {
            std::printf("  %s: rack %zu DIFFERS\n", label, r);
            identical = false;
        }
    }
    return identical;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::size_t jobs = 0; // 0 -> defaultJobs()
    std::string out_path = "BENCH_fleet.json";

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            long n = std::stol(argv[++i]);
            if (n < 1)
                fatal("--jobs must be >= 1");
            jobs = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--out")) {
            if (i + 1 >= argc)
                fatal("--out requires a value");
            out_path = argv[++i];
        } else {
            fatal("usage: fleet_perf [--quick] [--jobs N] "
                  "[--out FILE]; got '",
                  argv[i], "'");
        }
    }
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();

    obs::setTelemetryLevel(obs::TelemetryLevel::Off);

    FleetScenario s = buildScenario(quick);
    const std::size_t racks = s.workloads.size();
    const double rack_ticks =
        static_cast<double>(racks) * s.cfg.durationSeconds /
        s.cfg.tickSeconds;
    std::printf("fleet_perf: %zu racks x %zu servers x %.0f h, "
                "proportional arbitration, shared fault plan\n",
                racks, s.cfg.numServers,
                s.cfg.durationSeconds / 3600.0);

    // Dense witness and the single-job event leg isolate the engine;
    // the pooled event leg adds per-tick fan-out on top.
    ThreadPool::configureGlobal(1);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::string> dense = runLeg(s, FleetMode::Dense,
                                            nullptr);
    double dense_s = wallSeconds(t0);
    std::printf("dense  (1 job):    %7.2f s  (%.2fM rack-ticks/s)\n",
                dense_s, rack_ticks / dense_s / 1e6);

    FleetResult event_agg;
    t0 = std::chrono::steady_clock::now();
    std::vector<std::string> event = runLeg(s, FleetMode::Event,
                                            &event_agg);
    double event_s = wallSeconds(t0);
    std::printf("event  (1 job):    %7.2f s  (%.2fM rack-ticks/s), "
                "%lu macro-spans covering %lu of %.0f ticks\n",
                event_s, rack_ticks / event_s / 1e6,
                event_agg.macroSpans, event_agg.macroSpanTicks,
                s.cfg.durationSeconds / s.cfg.tickSeconds);

    ThreadPool::configureGlobal(jobs);
    t0 = std::chrono::steady_clock::now();
    std::vector<std::string> pooled = runLeg(s, FleetMode::Event,
                                             nullptr);
    double pooled_s = wallSeconds(t0);
    ThreadPool::configureGlobal(0);
    std::printf("event  (%zu jobs):  %7.2f s  (%.2fM rack-ticks/s)\n",
                jobs, pooled_s, rack_ticks / pooled_s / 1e6);

    bool identical = compareLegs(dense, event, "event") &
                     compareLegs(dense, pooled, "event+jobs");
    double speedup = event_s > 0.0 ? dense_s / event_s : 0.0;
    double speedup_jobs =
        pooled_s > 0.0 ? dense_s / pooled_s : 0.0;
    std::printf("speedup: event %.2fx, event+jobs %.2fx, per-rack "
                "results %s\n",
                speedup, speedup_jobs,
                identical ? "byte-identical" : "DIFFER");

    std::string json = "{\n";
    auto field = [&json](const char *name, double value) {
        json += "  ";
        obs::appendJsonString(json, name);
        json += ": ";
        obs::appendJsonNumber(json, value);
        json += ",\n";
    };
    field("racks", static_cast<double>(racks));
    field("servers_per_rack", static_cast<double>(s.cfg.numServers));
    field("sim_hours", s.cfg.durationSeconds / 3600.0);
    field("rack_ticks", rack_ticks);
    field("jobs", static_cast<double>(jobs));
    field("dense_seconds", dense_s);
    field("event_seconds", event_s);
    field("event_jobs_seconds", pooled_s);
    field("rack_ticks_per_second_dense", rack_ticks / dense_s);
    field("rack_ticks_per_second_event", rack_ticks / event_s);
    field("rack_ticks_per_second_event_jobs",
          rack_ticks / pooled_s);
    field("macro_spans", static_cast<double>(event_agg.macroSpans));
    field("macro_span_ticks",
          static_cast<double>(event_agg.macroSpanTicks));
    field("dense_ticks", static_cast<double>(event_agg.denseTicks));
    field("speedup", speedup);
    field("speedup_jobs", speedup_jobs);
    // Whole-process high-water mark: all three legs share it, so it
    // reflects the heaviest leg (the dense witness's kept series).
    field("peak_rss_bytes", static_cast<double>(peakRssBytes()));
    json += "  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"identical\": ";
    json += identical ? "true" : "false";
    json += "\n}\n";

    if (!writeFileAtomic(out_path, json))
        fatal("cannot write ", out_path);
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 1;
}

/**
 * @file
 * Reproduces paper Figure 12: the four headline metrics of all six
 * power-management schemes over the eight workloads.
 *
 *  (a) energy efficiency          — HEB-D +39.7 % vs BaOnly in the
 *                                   paper (+52.5 % small peaks,
 *                                   +27.1 % large peaks)
 *  (b) server downtime            — HEB-D −41 %
 *  (c) battery lifetime           — HEB-D 4.7x
 *  (d) renewable energy utilization — SC schemes +81.2 %
 *
 * (a)-(c) run the under-provisioned utility configuration; (d) swaps
 * the utility feed for the synthetic solar array. All schemes share
 * equal total buffer capacity (SC:BA = 3:7 for hybrids), as in §6.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/sweep_cli.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

void
printComparison(const char *title,
                const std::vector<SchemeSummary> &rows, bool solar)
{
    std::printf("\n%s\n", title);
    TablePrinter table(
        solar ? std::vector<std::string>{"scheme", "REU",
                                         "REU vs BaOnly"}
              : std::vector<std::string>{
                    "scheme", "eff", "eff(small)", "eff(large)",
                    "downtime(s)", "bat life(y)", "eff vs BaOnly",
                    "downtime vs BaOnly", "life vs BaOnly"});

    const SchemeSummary &base = rows.front();
    for (const SchemeSummary &row : rows) {
        if (solar) {
            table.addRow({row.scheme, TablePrinter::num(row.reu, 3),
                          TablePrinter::num(
                              base.reu > 0.0
                                  ? (row.reu / base.reu - 1.0) * 100.0
                                  : 0.0,
                              1) +
                              "%"});
        } else {
            double eff_gain =
                (row.energyEfficiency / base.energyEfficiency - 1.0) *
                100.0;
            double dt_gain =
                base.downtimeSeconds > 0.0
                    ? (1.0 -
                       row.downtimeSeconds / base.downtimeSeconds) *
                          100.0
                    : 0.0;
            double life_gain = row.batteryLifetimeYears /
                               base.batteryLifetimeYears;
            table.addRow(
                {row.scheme,
                 TablePrinter::num(row.energyEfficiency, 3),
                 TablePrinter::num(row.energyEfficiencySmall, 3),
                 TablePrinter::num(row.energyEfficiencyLarge, 3),
                 TablePrinter::num(row.downtimeSeconds, 0),
                 TablePrinter::num(row.batteryLifetimeYears, 2),
                 TablePrinter::num(eff_gain, 1) + "%",
                 TablePrinter::num(dt_gain, 1) + "%",
                 TablePrinter::num(life_gain, 2) + "x"});
        }
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    applySweepCliArgs(argc, argv);
    std::printf("=== Figure 12: scheme comparison, 8 workloads, "
                "equal-capacity buffers (SC:BA = 3:7) ===\n");

    HebSchemeConfig scheme_cfg;

    // (a)-(c): under-provisioned utility feed.
    SimConfig grid_cfg;
    auto grid_rows = compareSchemes(grid_cfg, allWorkloadNames(),
                                    allSchemeKinds(), scheme_cfg);
    printComparison("Fig. 12(a)-(c): utility feed (budget 260 W)",
                    grid_rows, /*solar=*/false);

    // (d): solar-powered REU. The array is sized so generation
    // oscillates around demand and the Markov cloud process flips the
    // mismatch sign every few minutes — the regime where the battery
    // charge-current ceiling actually strands renewable energy.
    SimConfig solar_cfg;
    solar_cfg.solarPowered = true;
    solar_cfg.solarParams.ratedPowerW = 450.0;
    solar_cfg.solarParams.pLeaveClear = 0.15;
    solar_cfg.solarParams.pLeavePartly = 0.15;
    solar_cfg.solarParams.pLeaveOvercast = 0.12;
    solar_cfg.solarParams.partlyCloudyFactor = 0.50;
    solar_cfg.solarParams.overcastFactor = 0.08;
    auto solar_rows = compareSchemes(solar_cfg, allWorkloadNames(),
                                     allSchemeKinds(), scheme_cfg);
    printComparison("Fig. 12(d): solar feed, renewable energy "
                    "utilization",
                    solar_rows, /*solar=*/true);

    std::printf("\nPaper reference: HEB-D vs BaOnly: efficiency "
                "+39.7%% (small +52.5%%, large +27.1%%), downtime "
                "-41%%, battery lifetime 4.7x, REU +81.2%%.\n");
    return 0;
}

/**
 * @file
 * Backup ride-through bench: the classic UPS role the HEB
 * architecture keeps serving (paper §1: "an additional layer of
 * safety in the event of unexpected power mismatches"; related work
 * [33] dual-purposes storage for backup + demand response).
 *
 * Injects utility outages of growing length during a busy period and
 * reports, per scheme, the downtime and unserved energy — showing
 * how long each buffer configuration can carry the whole cluster.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

int
main()
{
    std::printf("=== Backup ride-through: outage duration vs scheme "
                "===\n(WC workload, outage injected at t=1h)\n\n");

    HebSchemeConfig scheme_cfg;
    SimConfig base;
    base.durationSeconds = 4.0 * 3600.0;
    PowerAllocationTable pat = buildSeededPat(base, scheme_cfg);

    TablePrinter table({"outage(s)", "scheme", "downtime(s)",
                        "unserved(Wh)", "buffer->load(Wh)",
                        "reboots"});
    for (double outage_s : {30.0, 120.0, 480.0, 1800.0}) {
        for (SchemeKind kind : {SchemeKind::BaOnly,
                                SchemeKind::ScFirst,
                                SchemeKind::HebD}) {
            SimConfig cfg = base;
            cfg.outages = {{3600.0, outage_s}};
            SimResult r =
                runOne(cfg, "WC", kind, scheme_cfg, &pat);
            table.addRow(
                {TablePrinter::num(outage_s, 0), r.schemeName,
                 TablePrinter::num(r.downtimeSeconds, 0),
                 TablePrinter::num(r.ledger.unservedWh, 2),
                 TablePrinter::num(r.ledger.bufferToLoadWh(), 1),
                 std::to_string(r.serverOnOffCycles)});
        }
    }
    table.print();

    std::printf("\nReading: short outages are invisible behind the "
                "hybrid bank; the homogeneous battery browns out "
                "first because the full cluster load exceeds its "
                "discharge rating.\n");
    return 0;
}

/**
 * @file
 * Reproduces paper Figure 15: (a) prototype cost breakdown, (b) ROI
 * of hybrid buffers vs under-provisioning CAP-EX, and (c) the
 * 8-year peak-shaving revenue race with its break-even years.
 *
 * Part (c) additionally demonstrates the cross-module pipeline: the
 * scheme effectiveness inputs can be derived from a live Fig. 12
 * simulation instead of the paper defaults (pass --sim).
 */

#include <cstdio>
#include <cstring>

#include "sim/experiment.h"
#include "tco/cost_model.h"
#include "tco/peak_shaving.h"
#include "tco/roi.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

void
partA()
{
    std::printf("--- Fig. 15(a): prototype cost breakdown ---\n");
    CostBreakdown b = prototypeCostBreakdown();
    TablePrinter table({"component", "$", "share(%)"});
    for (const auto &item : b.items) {
        table.addRow({item.component,
                      TablePrinter::num(item.dollars, 0),
                      TablePrinter::num(
                          100.0 * b.fraction(item.component), 1)});
    }
    table.addRow({"TOTAL", TablePrinter::num(b.total(), 0), "100.0"});
    table.print();
    std::printf("HEB node = %.1f%% of the six-server cost ($%.0f); "
                "paper: <16%%, ESDs ~55%%.\n\n",
                100.0 * b.total() / kSixServerCostDollars,
                kSixServerCostDollars);
}

void
partB()
{
    std::printf("--- Fig. 15(b): ROI vs infrastructure cost and "
                "peak duration ---\n");
    RoiModel roi;
    TablePrinter table({"C_cap($/W)", "e=0.25h", "e=0.5h", "e=1h",
                        "e=2h"});
    for (double c_cap : {2.0, 5.0, 10.0, 15.0, 20.0}) {
        table.addRow({TablePrinter::num(c_cap, 0),
                      TablePrinter::num(roi.roi(c_cap, 0.25), 2),
                      TablePrinter::num(roi.roi(c_cap, 0.5), 2),
                      TablePrinter::num(roi.roi(c_cap, 1.0), 2),
                      TablePrinter::num(roi.roi(c_cap, 2.0), 2)});
    }
    table.print();
    std::printf("Paper shape: positive ROI across most operating "
                "regions; long peaks + cheap infrastructure turn it "
                "negative.\n\n");
}

std::vector<SchemeEconomics>
economicsFromSimulation()
{
    std::printf("(deriving scheme economics from a live Fig. 12 "
                "simulation...)\n");
    SimConfig cfg;
    auto rows = compareSchemes(cfg, allWorkloadNames(),
                               {SchemeKind::BaOnly, SchemeKind::BaFirst,
                                SchemeKind::ScFirst, SchemeKind::HebD});
    const SchemeSummary &base = rows[0];
    std::vector<SchemeEconomics> out;
    for (const SchemeSummary &row : rows) {
        SchemeEconomics e;
        e.name = row.scheme == "HEB-D" ? "HEB" : row.scheme;
        e.hybrid = row.scheme != "BaOnly";
        // Effectiveness: the BaOnly anchor (0.51) scaled by relative
        // efficiency and availability gains measured in simulation.
        double eff_gain = row.energyEfficiency / base.energyEfficiency;
        double avail_gain =
            base.downtimeSeconds > 0.0
                ? 1.0 + 0.5 * (1.0 - row.downtimeSeconds /
                                         base.downtimeSeconds)
                : 1.0;
        e.shavingEffectiveness =
            std::min(1.0, 0.51 * eff_gain * avail_gain);
        e.batteryLifetimeYears =
            std::max(1.0, 4.0 * row.batteryLifetimeYears /
                              base.batteryLifetimeYears);
        out.push_back(e);
    }
    return out;
}

void
partC(bool from_sim)
{
    std::printf("--- Fig. 15(c): 8-year peak shaving economics "
                "(100 kW DC, 20 kWh buffer, 12 $/kW tariff) ---\n");
    PeakShavingModel model;
    auto schemes = from_sim ? economicsFromSimulation()
                            : PeakShavingModel::paperDefaults();
    auto results = model.evaluateAll(schemes);

    TablePrinter table({"scheme", "capex($)", "revenue($/yr)",
                        "break-even(yr)", "net @ 8yr($)",
                        "vs BaOnly"});
    for (const auto &r : results) {
        double ratio =
            PeakShavingModel::revenueRatio(r, results.front());
        table.addRow(
            {r.scheme, TablePrinter::num(r.capex, 0),
             TablePrinter::num(r.annualRevenue, 0),
             r.breakEvenYears > 0.0
                 ? TablePrinter::num(r.breakEvenYears, 1)
                 : std::string("never"),
             TablePrinter::num(r.netAtHorizon, 0),
             TablePrinter::num(ratio, 2) + "x"});
    }
    table.print();

    std::printf("\nCumulative net profit by year ($):\n");
    TablePrinter curve({"scheme", "y1", "y2", "y3", "y4", "y5", "y6",
                        "y7", "y8"});
    for (const auto &r : results) {
        std::vector<std::string> cells = {r.scheme};
        for (double v : r.cumulativeNetByYear)
            cells.push_back(TablePrinter::num(v, 0));
        curve.addRow(cells);
    }
    curve.print();

    std::printf("\nPaper reference: break-even BaOnly 4.2 / BaFirst "
                "6.3 / SCFirst 4.9 / HEB 3.7 years; HEB earns "
                ">1.9x BaOnly. Note the documented SC-price "
                "substitution (DESIGN.md / EXPERIMENTS.md).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool from_sim =
        argc > 1 && std::strcmp(argv[1], "--sim") == 0;
    std::printf("=== Figure 15: TCO analysis ===\n\n");
    partA();
    partB();
    partC(from_sim);
    return 0;
}

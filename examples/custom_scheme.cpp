/**
 * @file
 * Example: extending the library with a custom management scheme.
 *
 * Downstream research on top of HEB means writing new policies. This
 * example implements ReserveScheme — "always keep the battery above
 * a reserve SoC for outage backup; shave peaks with whatever is left"
 * (the dual-purposing question of the paper's related work [33]) —
 * entirely against the public ManagementScheme interface, then races
 * it against HEB-D with and without an injected outage.
 */

#include <algorithm>
#include <cstdio>

#include "core/ride_through.h"
#include "esd/bank_builder.h"
#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

/**
 * Keep a battery reserve for backup; peak-shave with the SC branch
 * plus only the battery capacity above the reserve.
 */
class ReserveScheme : public ManagementScheme
{
  public:
    explicit ReserveScheme(double reserve_soc_wh)
        : reserveWh_(reserve_soc_wh)
    {
    }

    const std::string &
    name() const override
    {
        return name_;
    }

    SlotPlan
    planSlot(const SlotSensors &sensors) override
    {
        SlotPlan plan;
        plan.chargeScFirst = true;
        double pm = std::max(
            0.0, sensors.lastSlotPeakW - sensors.lastSlotValleyW);
        plan.predictedMismatchW = pm;
        plan.predictedClass =
            pm <= 80.0 ? PeakClass::Small : PeakClass::Large;

        // Battery participation only with energy above the reserve.
        double spare_ba =
            std::max(0.0, sensors.baUsableWh - reserveWh_);
        if (plan.predictedClass == PeakClass::Small ||
            spare_ba <= 0.0) {
            plan.rLambda = 1.0; // SC only
        } else {
            // Let the battery carry what its spare energy sustains
            // over the slot, capped by its power rating.
            double slot_h = sensors.slotSeconds / 3600.0;
            double ba_power = std::min(sensors.baMaxPowerW,
                                       spare_ba / slot_h);
            plan.rLambda = pm > 0.0
                               ? std::clamp(1.0 - ba_power / pm,
                                            0.0, 1.0)
                               : 1.0;
            plan.batteryBasePlanW = pm;
        }
        return plan;
    }

    void
    finishSlot(const SlotOutcome &) override
    {
    }

  private:
    std::string name_ = "Reserve";
    double reserveWh_;
};

void
race(const SimConfig &cfg, const char *label)
{
    std::printf("--- %s ---\n", label);
    TablePrinter table({"scheme", "downtime(s)", "eff",
                        "bat life(y)", "buffer->load(Wh)",
                        "unserved(Wh)"});

    HebSchemeConfig scheme_cfg;
    PowerAllocationTable pat = buildSeededPat(cfg, scheme_cfg);
    auto workload = makeWorkload("TS", cfg.seed);

    auto heb = makeScheme(SchemeKind::HebD, scheme_cfg, &pat);
    ReserveScheme reserve(30.0); // keep ~30 Wh for backup

    for (ManagementScheme *scheme :
         {heb.get(), static_cast<ManagementScheme *>(&reserve)}) {
        Simulator sim(cfg);
        SimResult r = sim.run(*workload, *scheme);
        table.addRow({r.schemeName,
                      TablePrinter::num(r.downtimeSeconds, 0),
                      TablePrinter::num(r.energyEfficiency, 3),
                      TablePrinter::num(r.batteryLifetimeYears, 2),
                      TablePrinter::num(
                          r.ledger.bufferToLoadWh(), 1),
                      TablePrinter::num(r.ledger.unservedWh, 2)});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Custom scheme example: battery-reserve policy "
                "vs HEB-D ===\n\n");

    SimConfig normal;
    race(normal, "normal operation (TS workload, 2 days)");

    SimConfig outage = normal;
    outage.outages = {{30.0 * 3600.0, 900.0}};
    race(outage, "with a 15-minute outage injected at t=30h");

    std::printf(
        "Reading: the reserve policy sacrifices some peak-shaving "
        "(battery sits idle above its floor) to guarantee backup "
        "energy for outages — the dual-purposing tradeoff of the "
        "paper's related work [33].\n");
    return 0;
}

/**
 * @file
 * Example: an under-provisioned datacenter riding a Google-style
 * bursty trace (the paper's §2.1 scenario).
 *
 * The cluster subscribes only a fraction of its nameplate power; the
 * hybrid buffer absorbs the overshoot. The example compares BaOnly
 * against HEB-D at several provisioning levels and prints, per
 * level, the downtime and efficiency each scheme achieves plus the
 * utility peak actually drawn (the peak-shaving effect the TCO model
 * prices).
 *
 * Usage: underprovisioned_dc [provision_fraction...]
 *        (defaults: 0.75 0.65 0.55)
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/google_trace.h"
#include "workload/trace_workload.h"

using namespace heb;

int
main(int argc, char **argv)
{
    std::vector<double> levels;
    for (int i = 1; i < argc; ++i)
        levels.push_back(std::atof(argv[i]));
    if (levels.empty())
        levels = {0.75, 0.65, 0.55};

    std::printf("=== Under-provisioned datacenter on a bursty "
                "cluster trace ===\n\n");

    // Two days of normalized demand driving all six servers.
    TimeSeries trace = generateGoogleTrace(2.0, 10.0, 77);
    TraceWorkload workload("google-trace", trace, PeakClass::Large,
                           45.0);

    SimConfig base; // six prototype servers
    double nameplate = 420.0;

    TablePrinter table({"provision", "budget(W)", "scheme",
                        "downtime(s)", "eff", "peak draw(W)",
                        "buffer->load(Wh)", "unserved(Wh)"});

    for (double level : levels) {
        for (SchemeKind kind :
             {SchemeKind::BaOnly, SchemeKind::HebD}) {
            SimConfig cfg = base;
            cfg.budgetW = nameplate * level;

            HebSchemeConfig scheme_cfg;
            PowerAllocationTable pat =
                buildSeededPat(cfg, scheme_cfg);
            auto scheme = makeScheme(kind, scheme_cfg, &pat);
            Simulator sim(cfg);
            SimResult r = sim.run(workload, *scheme);

            table.addRow(
                {TablePrinter::num(level * 100.0, 0) + "%",
                 TablePrinter::num(cfg.budgetW, 0), r.schemeName,
                 TablePrinter::num(r.downtimeSeconds, 0),
                 TablePrinter::num(r.energyEfficiency, 3),
                 TablePrinter::num(r.peakUtilityDrawW, 1),
                 TablePrinter::num(r.ledger.bufferToLoadWh(), 1),
                 TablePrinter::num(r.ledger.unservedWh, 2)});
        }
    }
    table.print();

    std::printf("\nReading: deeper under-provisioning shifts more "
                "energy through the buffers; the hybrid scheme holds "
                "uptime where the homogeneous battery sheds "
                "servers.\n");
    return 0;
}

/**
 * @file
 * Example: a solar-powered datacenter (the paper's §2.2/§7.4
 * scenario).
 *
 * The rig runs entirely from the synthetic rooftop array. The
 * example compares all six management schemes on renewable energy
 * utilization (REU), spilled generation, and uptime — showing why
 * the SC branch's unlimited charge acceptance matters when clouds
 * whip the supply around.
 *
 * Usage: renewable_dc [rated_watts] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

int
main(int argc, char **argv)
{
    double rated = argc > 1 ? std::atof(argv[1]) : 450.0;
    std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 42;

    std::printf("=== Solar-powered datacenter (array %.0f W, seed "
                "%llu) ===\n\n",
                rated, static_cast<unsigned long long>(seed));

    SimConfig cfg;
    cfg.solarPowered = true;
    cfg.seed = seed;
    cfg.solarParams.ratedPowerW = rated;
    cfg.solarParams.pLeaveClear = 0.15;
    cfg.solarParams.pLeavePartly = 0.15;
    cfg.solarParams.pLeaveOvercast = 0.12;
    cfg.solarParams.overcastFactor = 0.08;

    HebSchemeConfig scheme_cfg;
    PowerAllocationTable pat = buildSeededPat(cfg, scheme_cfg);

    auto workload = makeWorkload("WS", seed);

    TablePrinter table({"scheme", "REU", "spilled(Wh)",
                        "stored from solar(Wh)", "downtime(s)",
                        "served(Wh)"});
    for (SchemeKind kind : allSchemeKinds()) {
        auto scheme = makeScheme(kind, scheme_cfg, &pat);
        Simulator sim(cfg);
        SimResult r = sim.run(*workload, *scheme);
        table.addRow({r.schemeName, TablePrinter::num(r.reu, 3),
                      TablePrinter::num(r.ledger.spilledSourceWh, 0),
                      TablePrinter::num(
                          r.ledger.sourceToBuffersWh(), 1),
                      TablePrinter::num(r.downtimeSeconds, 0),
                      TablePrinter::num(r.ledger.servedWh(), 0)});
    }
    table.print();

    std::printf("\nReading: schemes that absorb valleys through the "
                "SC waste far less generation; the battery's charge "
                "ceiling is the bottleneck for BaOnly.\n");
    return 0;
}

/**
 * @file
 * Example: right-sizing a hybrid buffer (the paper's §7.5 question).
 *
 * Given a target workload mix and budget, sweep the SC:battery split
 * and the total installed energy, score each design on a weighted
 * objective (uptime first, then efficiency, then battery life), and
 * recommend a configuration with its capital cost.
 *
 * Usage: capacity_planning [budget_watts]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/experiment.h"
#include "tco/cost_model.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

struct Design
{
    double scWh = 0.0;
    double baWh = 0.0;
    SchemeSummary summary;
    double dollars = 0.0;
    double score = 0.0;
};

double
designCost(double sc_wh, double ba_wh)
{
    const auto &sc = findTechnology("supercap");
    const auto &la = findTechnology("lead-acid");
    return sc_wh / 1000.0 * sc.initialCostPerKwh +
           ba_wh / 1000.0 * la.initialCostPerKwh;
}

double
scoreDesign(const SchemeSummary &s, double duration_s,
            std::size_t workloads)
{
    double uptime_frac =
        1.0 - s.downtimeSeconds /
                  (duration_s * 6.0 * static_cast<double>(workloads));
    return 0.6 * uptime_frac + 0.25 * s.energyEfficiency +
           0.15 * std::min(1.0, s.batteryLifetimeYears / 8.0);
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = argc > 1 ? std::atof(argv[1]) : 260.0;

    std::printf("=== Hybrid buffer capacity planning (budget %.0f W) "
                "===\n\n",
                budget);

    // Representative mix: two small-peak and one large-peak workload
    // keeps the sweep quick while exercising both regimes.
    std::vector<std::string> mix = {"WC", "MS", "TS"};

    SimConfig base;
    base.budgetW = budget;
    base.durationSeconds = 24.0 * 3600.0;

    std::vector<Design> designs;
    for (double total : {64.0, 96.0, 128.0}) {
        for (auto [m, n] : std::vector<std::pair<double, double>>{
                 {2.0, 8.0}, {3.0, 7.0}, {5.0, 5.0}}) {
            SimConfig cfg = base;
            cfg.scEnergyWh = total * m / (m + n);
            cfg.baEnergyWh = total * n / (m + n);
            auto rows = compareSchemes(cfg, mix, {SchemeKind::HebD});
            Design d;
            d.scWh = cfg.scEnergyWh;
            d.baWh = cfg.baEnergyWh;
            d.summary = std::move(rows.front());
            d.dollars = designCost(d.scWh, d.baWh);
            d.score = scoreDesign(d.summary, cfg.durationSeconds,
                                  mix.size());
            designs.push_back(std::move(d));
        }
    }

    TablePrinter table({"SC(Wh)", "BA(Wh)", "eff", "downtime(s)",
                        "bat life(y)", "cost($)", "score"});
    const Design *best = &designs.front();
    for (const Design &d : designs) {
        if (d.score > best->score ||
            (d.score == best->score && d.dollars < best->dollars)) {
            best = &d;
        }
        table.addRow({TablePrinter::num(d.scWh, 1),
                      TablePrinter::num(d.baWh, 1),
                      TablePrinter::num(d.summary.energyEfficiency, 3),
                      TablePrinter::num(d.summary.downtimeSeconds, 0),
                      TablePrinter::num(
                          d.summary.batteryLifetimeYears, 2),
                      TablePrinter::num(d.dollars, 0),
                      TablePrinter::num(d.score, 4)});
    }
    table.print();

    std::printf("\nRecommended design: SC %.1f Wh + battery %.1f Wh "
                "($%.0f) — score %.4f, downtime %.0f s, efficiency "
                "%.3f.\n",
                best->scWh, best->baWh, best->dollars, best->score,
                best->summary.downtimeSeconds,
                best->summary.energyEfficiency);
    return 0;
}

/**
 * @file
 * Quickstart: simulate one day of the HEB prototype.
 *
 * Builds the paper's scale-down rig (six servers, 260 W budget,
 * SC:BA = 3:7 hybrid bank), runs the Terasort workload under the
 * HEB-D scheme, and prints the four headline metrics.
 *
 * Usage: quickstart [workload] [scheme]
 *   workload: PR WC DA WS MS DFS HB TS   (default TS)
 *   scheme:   BaOnly BaFirst SCFirst HEB-F HEB-S HEB-D (default HEB-D)
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "util/table_printer.h"

namespace {

heb::SchemeKind
parseScheme(const std::string &name)
{
    for (heb::SchemeKind kind : heb::allSchemeKinds()) {
        if (name == heb::schemeKindName(kind))
            return kind;
    }
    std::fprintf(stderr, "unknown scheme '%s', using HEB-D\n",
                 name.c_str());
    return heb::SchemeKind::HebD;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "TS";
    heb::SchemeKind scheme =
        parseScheme(argc > 2 ? argv[2] : "HEB-D");

    heb::SimConfig config; // the paper's prototype defaults
    heb::HebSchemeConfig scheme_cfg;

    std::printf("HEB quickstart: workload=%s scheme=%s\n",
                workload.c_str(), heb::schemeKindName(scheme));
    std::printf("  servers=%zu budget=%.0fW bank=%.1fWh (SC %.1f / BA "
                "%.1f)\n\n",
                config.numServers, config.budgetW,
                config.totalBufferWh(), config.scEnergyWh,
                config.baEnergyWh);

    heb::PowerAllocationTable pat =
        heb::buildSeededPat(config, scheme_cfg);
    heb::SimResult r =
        heb::runOne(config, workload, scheme, scheme_cfg, &pat);

    heb::TablePrinter table({"metric", "value"});
    table.addRow({"buffer round-trip efficiency",
                  heb::TablePrinter::num(r.energyEfficiency, 3)});
    table.addRow({"effective efficiency (w/ losses)",
                  heb::TablePrinter::num(r.effectiveEfficiency, 3)});
    table.addRow({"server downtime (s)",
                  heb::TablePrinter::num(r.downtimeSeconds, 0)});
    table.addRow({"battery lifetime (years)",
                  heb::TablePrinter::num(r.batteryLifetimeYears, 2)});
    table.addRow({"battery throughput (Ah)",
                  heb::TablePrinter::num(r.batteryDischargeAh, 2)});
    table.addRow({"SC throughput (Ah)",
                  heb::TablePrinter::num(r.scDischargeAh, 2)});
    table.addRow({"energy served (Wh)",
                  heb::TablePrinter::num(r.ledger.servedWh(), 1)});
    table.addRow({"buffer->load (Wh)",
                  heb::TablePrinter::num(r.ledger.bufferToLoadWh(), 1)});
    table.addRow({"unserved (Wh)",
                  heb::TablePrinter::num(r.ledger.unservedWh, 1)});
    table.addRow({"peak utility draw (W)",
                  heb::TablePrinter::num(r.peakUtilityDrawW, 1)});
    table.addRow({"control slots",
                  heb::TablePrinter::num(
                      static_cast<double>(r.completedSlots), 0)});
    table.print();
    return 0;
}

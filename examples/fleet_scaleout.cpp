/**
 * @file
 * Example: scaling HEB out across racks (paper Fig. 8c).
 *
 * Three racks with different workload mixes share one facility feed.
 * The example contrasts static per-rack budget slicing against
 * demand-proportional arbitration — the facility-level coordination
 * a distributed, reconfigurable buffer architecture enables.
 *
 * Usage: fleet_scaleout [facility_budget_watts]
 */

#include <cstdio>
#include <cstdlib>

#include "core/schemes.h"
#include "sim/fleet.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

void
runPolicy(BudgetPolicy policy, double budget)
{
    SimConfig cfg;
    cfg.durationSeconds = 24.0 * 3600.0;

    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    const char *mix[] = {"TS", "WS", "WC"};
    for (int i = 0; i < 3; ++i) {
        workloads.push_back(makeWorkload(mix[i]));
        schemes.push_back(makeScheme(SchemeKind::HebD));
        specs.push_back(RackSpec{"rack" + std::to_string(i),
                                 workloads.back().get(),
                                 schemes.back().get()});
    }

    FleetSimulator fleet(cfg, budget, policy);
    FleetResult r = fleet.run(specs);

    std::printf("--- %s arbitration ---\n",
                budgetPolicyName(policy));
    TablePrinter table({"rack", "workload", "downtime(s)", "eff",
                        "unserved(Wh)", "buffer->load(Wh)"});
    for (const SimResult &rr : r.racks) {
        table.addRow({rr.workloadName == "TS"   ? "rack0"
                      : rr.workloadName == "WS" ? "rack1"
                                                : "rack2",
                      rr.workloadName,
                      TablePrinter::num(rr.downtimeSeconds, 0),
                      TablePrinter::num(rr.energyEfficiency, 3),
                      TablePrinter::num(rr.ledger.unservedWh, 2),
                      TablePrinter::num(
                          rr.ledger.bufferToLoadWh(), 1)});
    }
    table.print();
    std::printf("fleet: downtime %.0f s, unserved %.2f Wh, facility "
                "peak %.1f W, mean eff %.3f (unweighted %.3f)\n\n",
                r.totalDowntimeSeconds, r.totalUnservedWh,
                r.facilityPeakDrawW, r.meanEfficiency,
                r.meanEfficiencyUnweighted);
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = argc > 1 ? std::atof(argv[1]) : 3.0 * 245.0;
    std::printf("=== Three-rack HEB fleet on a %.0f W facility feed "
                "===\n\n",
                budget);
    runPolicy(BudgetPolicy::Static, budget);
    runPolicy(BudgetPolicy::Proportional, budget);
    std::printf("Reading: demand-proportional arbitration moves the "
                "quiet racks' headroom to the rack fighting a large "
                "peak.\n");
    return 0;
}

/**
 * @file
 * heb_availability — Monte-Carlo availability analysis under fault
 * injection.
 *
 * Runs N seeded fault scenarios per scheme (same fault histories for
 * every scheme), prints a per-scheme availability table, and
 * optionally writes the deterministic JSON summary. Scenario fan-out
 * runs on the shared thread pool; the output is bit-identical for any
 * --jobs value.
 *
 * Usage:
 *   heb_availability [--scenarios N] [--duration-hours H]
 *                    [--workload NAME] [--schemes A,B,...]
 *                    [--seed S] [--jobs N] [--out FILE.json]
 *                    [--no-degradation] [--log-level LEVEL]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/units.h"

using namespace heb;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind : allSchemeKinds()) {
        if (name == schemeKindName(kind))
            return kind;
    }
    fatal("unknown scheme '", name,
          "' (expected BaOnly/BaFirst/SCFirst/HEB-F/HEB-S/HEB-D)");
}

std::vector<SchemeKind>
parseSchemeList(const std::string &list)
{
    std::vector<SchemeKind> kinds;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > pos)
            kinds.push_back(
                parseScheme(list.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    if (kinds.empty())
        fatal("--schemes: empty list");
    return kinds;
}

void
usage()
{
    std::printf(
        "usage: heb_availability [--scenarios N] "
        "[--duration-hours H] [--workload NAME]\n"
        "                        [--schemes A,B,...] [--seed S] "
        "[--jobs N] [--out FILE.json]\n"
        "                        [--no-degradation] "
        "[--fast-forward on|off] [--log-level LEVEL]\n"
        "  defaults: 100 scenarios, 8 h, workload TS, schemes "
        "BaOnly,SCFirst,HEB-D\n"
        "  --jobs sets the shared sweep pool width "
        "(HEB_JOBS honoured; default: all cores)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t scenarios = 100;
    double duration_hours = 8.0;
    std::string workload_name = "TS";
    std::vector<SchemeKind> schemes = {
        SchemeKind::BaOnly, SchemeKind::ScFirst, SchemeKind::HebD};
    std::uint64_t seed = 1;
    std::string out_path;
    bool degradation = true;
    bool fast_forward = true;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scenarios")) {
            long n = std::stol(need_value("--scenarios"));
            if (n < 1)
                fatal("--scenarios must be >= 1");
            scenarios = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--duration-hours")) {
            duration_hours =
                std::stod(need_value("--duration-hours"));
            if (duration_hours <= 0.0)
                fatal("--duration-hours must be positive");
        } else if (!std::strcmp(argv[i], "--workload"))
            workload_name = need_value("--workload");
        else if (!std::strcmp(argv[i], "--schemes"))
            schemes = parseSchemeList(need_value("--schemes"));
        else if (!std::strcmp(argv[i], "--seed"))
            seed = static_cast<std::uint64_t>(
                std::stoll(need_value("--seed")));
        else if (!std::strcmp(argv[i], "--out"))
            out_path = need_value("--out");
        else if (!std::strcmp(argv[i], "--no-degradation"))
            degradation = false;
        else if (!std::strcmp(argv[i], "--fast-forward")) {
            std::string v = need_value("--fast-forward");
            if (v != "on" && v != "off")
                fatal("--fast-forward expects on or off");
            fast_forward = v == "on";
        }
        else if (!std::strcmp(argv[i], "--jobs")) {
            long n = std::stol(need_value("--jobs"));
            if (n < 1)
                fatal("--jobs must be >= 1");
            ThreadPool::configureGlobal(
                static_cast<std::size_t>(n));
        } else if (!std::strcmp(argv[i], "--log-level"))
            setLogThreshold(parseLogLevel(need_value("--log-level")));
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", argv[i], "'");
        }
    }

    SimConfig cfg;
    cfg.durationSeconds = duration_hours * kSecondsPerHour;
    cfg.faultSeed = seed;
    cfg.degradationPolicy = degradation;
    cfg.fastForward = fast_forward;
    cfg.validate();

    std::printf("%zu scenarios x %zu schemes, %s, %.1f h, seed %llu, "
                "degradation %s\n",
                scenarios, schemes.size(), workload_name.c_str(),
                duration_hours,
                static_cast<unsigned long long>(seed),
                degradation ? "on" : "off");

    std::vector<AvailabilitySummary> rows =
        availabilitySweep(cfg, workload_name, schemes, scenarios);

    TablePrinter table({"scheme", "availability", "mean ENS (Wh)",
                        "p95 ENS (Wh)", "max ENS (Wh)", "crashes",
                        "sheds", "faults"});
    for (const AvailabilitySummary &s : rows) {
        table.addRow({s.scheme,
                      TablePrinter::num(s.availability, 6),
                      TablePrinter::num(s.meanEnsWh, 3),
                      TablePrinter::num(s.p95EnsWh, 3),
                      TablePrinter::num(s.maxEnsWh, 3),
                      TablePrinter::num(s.meanCrashEvents, 2),
                      TablePrinter::num(s.meanGracefulSheds, 2),
                      TablePrinter::num(s.meanFaultsApplied, 2)});
    }
    table.print();

    if (!out_path.empty()) {
        if (writeAvailabilityJson(out_path, rows, cfg,
                                  workload_name))
            std::printf("summary written to %s\n", out_path.c_str());
        else
            return 1;
    }
    return 0;
}

/**
 * @file
 * heb_fleet — command-line front end for the multi-rack fleet
 * simulator.
 *
 * Builds a fleet of racks (workloads cycled from a comma-separated
 * list), arbitrates a shared facility budget across them and prints
 * the fleet aggregates plus the engine's macro-tick statistics.
 *
 * Usage:
 *   heb_fleet [--racks N] [--workloads LIST] [--scheme NAME]
 *             [--servers N] [--hours H] [--budget-w W]
 *             [--policy static|proportional]
 *             [--fleet-mode dense|event] [--jobs N]
 *             [--shards N|auto] [--slim]
 *             [--out PREFIX] [--metrics-out FILE] [--prom-out FILE]
 *             [--metrics-listen PORT] [--trace-out FILE]
 *             [--trace-chrome FILE] [--trace-stride N]
 *             [--health-out FILE] [--health-stride SECONDS]
 *             [--watch] [--manifest FILE] [--profile]
 *             [--log-level LEVEL]
 *             [--checkpoint-every SECONDS] [--checkpoint-dir DIR]
 *             [--resume] [--result-json FILE]
 *
 * --fleet-mode selects the execution engine: dense per-tick
 * stepping, or the event engine that advances fleet-wide quiescent
 * spans in macro-ticks (results are identical either way; event is
 * faster the calmer the fleet). --slim drops per-rack results and
 * per-tick series, keeping memory flat in the rack count — the
 * configuration for very large fleets. --out writes the per-rack
 * metrics table to PREFIX_racks.csv (unavailable with --slim).
 *
 * Telemetry is off (zero-cost) unless an output asks for it:
 *  - --prom-out snapshots the metric registry as Prometheus text
 *    exposition (per-rack series labeled {rack=...,scheme=...});
 *    --metrics-listen serves the same body over HTTP on
 *    127.0.0.1:PORT for the duration of the run (0 = ephemeral).
 *  - --trace-chrome renders the event trace as Chrome trace_event
 *    JSON (load into Perfetto / chrome://tracing): one track per
 *    rack with quiescent macro-spans, fault windows and
 *    degradation instants; --profile adds a wall-time profiler
 *    process with per-thread span tracks.
 *  - --health-out writes the fleet health rollup JSON; --watch
 *    prints a heb_top-style table every --health-stride simulated
 *    seconds (default 900).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "sim/fleet_health.h"
#include "sim/plan_cache.h"
#include "sim/result_io.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind : allSchemeKinds()) {
        if (name == schemeKindName(kind))
            return kind;
    }
    fatal("unknown scheme '", name,
          "' (expected BaOnly/BaFirst/SCFirst/HEB-F/HEB-S/HEB-D)");
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

void
printWatchSample(const FleetHealthAggregator &health, void *)
{
    std::fputs(health.textSummary().c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

void
usage()
{
    std::printf(
        "usage: heb_fleet [--racks N] [--workloads LIST] "
        "[--scheme NAME] [--servers N] [--hours H]\n"
        "                 [--budget-w W] "
        "[--policy static|proportional] "
        "[--fleet-mode dense|event]\n"
        "                 [--jobs N] [--shards N|auto] [--slim] "
        "[--out PREFIX] "
        "[--metrics-out FILE] [--prom-out FILE]\n"
        "                 [--metrics-listen PORT] "
        "[--trace-out FILE] [--trace-chrome FILE] "
        "[--trace-stride N]\n"
        "                 [--health-out FILE] "
        "[--health-stride SECONDS] [--watch] [--manifest FILE]\n"
        "                 [--profile] [--log-level LEVEL] "
        "[--decorrelate-racks]\n"
        "                 [--checkpoint-every SECONDS] "
        "[--checkpoint-dir DIR] [--resume] "
        "[--result-json FILE]\n"
        "  workloads: comma-separated (PR WC DA WS MS DFS HB TS), "
        "cycled across racks\n"
        "  --decorrelate-racks gives each rack its own workload "
        "seed; default shares one plan per profile\n"
        "  --fleet-mode event advances fleet-wide quiescent spans "
        "in macro-ticks (identical results)\n"
        "  --slim drops per-rack results and per-tick series "
        "(memory flat in rack count)\n"
        "  --budget-w is the shared facility feed "
        "(default 260 W per rack)\n"
        "  --prom-out writes a Prometheus text-exposition snapshot; "
        "--metrics-listen serves it on 127.0.0.1:PORT\n"
        "  --trace-chrome writes Chrome trace_event JSON "
        "(Perfetto / chrome://tracing), one track per rack\n"
        "  --health-out writes the fleet health rollup JSON; "
        "--watch prints a live table every --health-stride s\n"
        "  --checkpoint-every writes resumable snapshots (one "
        "shard per rack + a manifest) every N sim-seconds\n"
        "  into --checkpoint-dir; --resume restarts from the "
        "newest valid one, even under a different --jobs.\n"
        "  --result-json writes the full %%.17g fleet result "
        "document (the resume byte-identity witness)\n"
        "  --shards N forks N worker processes, each owning a "
        "contiguous rack range (event engine only;\n"
        "  auto = one per core). Results stay byte-identical to "
        "--shards 1; checkpoints resume across counts.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t racks = 4;
    std::string workload_list = "TS,WC,MS,WS";
    std::string scheme_name = "HEB-D";
    std::size_t servers = 0; // 0 -> SimConfig default
    double hours = 0.0;      // 0 -> SimConfig default
    double budget_w = 0.0;   // 0 -> 260 W per rack
    BudgetPolicy policy = BudgetPolicy::Proportional;
    FleetMode mode = FleetMode::Event;
    bool slim = false;
    std::size_t shards = 1;
    std::string out_prefix;
    std::string metrics_path;
    std::string prom_path;
    std::string trace_path;
    std::string chrome_path;
    std::string health_path;
    std::string manifest_path;
    std::size_t trace_stride = 1;
    double health_stride = 900.0;
    bool watch = false;
    bool profile = false;
    bool decorrelate_racks = false;
    bool listen = false;
    long listen_port = 0;
    CheckpointOptions ckpt;
    std::string result_json_path;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--racks")) {
            long n = std::stol(need_value("--racks"));
            if (n < 1)
                fatal("--racks must be >= 1");
            racks = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--workloads"))
            workload_list = need_value("--workloads");
        else if (!std::strcmp(argv[i], "--scheme"))
            scheme_name = need_value("--scheme");
        else if (!std::strcmp(argv[i], "--servers")) {
            long n = std::stol(need_value("--servers"));
            if (n < 1)
                fatal("--servers must be >= 1");
            servers = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--hours")) {
            hours = std::stod(need_value("--hours"));
            if (hours <= 0.0)
                fatal("--hours must be positive");
        } else if (!std::strcmp(argv[i], "--budget-w")) {
            budget_w = std::stod(need_value("--budget-w"));
            if (budget_w <= 0.0)
                fatal("--budget-w must be positive");
        } else if (!std::strcmp(argv[i], "--policy")) {
            std::string v = need_value("--policy");
            if (v == "static")
                policy = BudgetPolicy::Static;
            else if (v == "proportional")
                policy = BudgetPolicy::Proportional;
            else
                fatal("--policy expects static or proportional");
        } else if (!std::strcmp(argv[i], "--fleet-mode")) {
            std::string v = need_value("--fleet-mode");
            if (v == "dense")
                mode = FleetMode::Dense;
            else if (v == "event")
                mode = FleetMode::Event;
            else
                fatal("--fleet-mode expects dense or event");
        } else if (!std::strcmp(argv[i], "--shards")) {
            std::string v = need_value("--shards");
            if (v == "auto") {
                shards = 0;
            } else {
                long n = std::stol(v);
                if (n < 1)
                    fatal("--shards must be >= 1 (or auto)");
                shards = static_cast<std::size_t>(n);
            }
        } else if (!std::strcmp(argv[i], "--jobs")) {
            long n = std::stol(need_value("--jobs"));
            if (n < 1)
                fatal("--jobs must be >= 1");
            ThreadPool::configureGlobal(
                static_cast<std::size_t>(n));
        } else if (!std::strcmp(argv[i], "--slim"))
            slim = true;
        else if (!std::strcmp(argv[i], "--out"))
            out_prefix = need_value("--out");
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metrics_path = need_value("--metrics-out");
        else if (!std::strcmp(argv[i], "--prom-out"))
            prom_path = need_value("--prom-out");
        else if (!std::strcmp(argv[i], "--metrics-listen")) {
            listen_port = std::stol(need_value("--metrics-listen"));
            if (listen_port < 0 || listen_port > 65535)
                fatal("--metrics-listen expects a port (0-65535)");
            listen = true;
        } else if (!std::strcmp(argv[i], "--trace-out"))
            trace_path = need_value("--trace-out");
        else if (!std::strcmp(argv[i], "--trace-chrome"))
            chrome_path = need_value("--trace-chrome");
        else if (!std::strcmp(argv[i], "--trace-stride")) {
            long n = std::stol(need_value("--trace-stride"));
            if (n < 1)
                fatal("--trace-stride must be >= 1");
            trace_stride = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--health-out"))
            health_path = need_value("--health-out");
        else if (!std::strcmp(argv[i], "--health-stride")) {
            health_stride = std::stod(need_value("--health-stride"));
            if (health_stride <= 0.0)
                fatal("--health-stride must be positive");
        } else if (!std::strcmp(argv[i], "--watch"))
            watch = true;
        else if (!std::strcmp(argv[i], "--manifest"))
            manifest_path = need_value("--manifest");
        else if (!std::strcmp(argv[i], "--profile"))
            profile = true;
        else if (!std::strcmp(argv[i], "--decorrelate-racks"))
            decorrelate_racks = true;
        else if (!std::strcmp(argv[i], "--checkpoint-every"))
            ckpt.everySimSeconds =
                std::stod(need_value("--checkpoint-every"));
        else if (!std::strcmp(argv[i], "--checkpoint-dir"))
            ckpt.dir = need_value("--checkpoint-dir");
        else if (!std::strcmp(argv[i], "--resume"))
            ckpt.resume = true;
        else if (!std::strcmp(argv[i], "--result-json"))
            result_json_path = need_value("--result-json");
        else if (!std::strcmp(argv[i], "--log-level"))
            setLogThreshold(parseLogLevel(need_value("--log-level")));
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", argv[i], "'");
        }
    }
    if (slim && !out_prefix.empty())
        fatal("--out needs per-rack results; drop --slim");
    ckpt.validate();
    if (!ckpt.dir.empty())
        std::filesystem::create_directories(ckpt.dir);

    std::vector<std::string> names = splitList(workload_list);
    if (names.empty())
        fatal("--workloads must name at least one workload");

    // Telemetry stays zero-cost unless an output asks for it. The
    // health aggregator is what publishes the per-rack labeled
    // metric families, so any metrics consumer implies health.
    const bool want_trace =
        !trace_path.empty() || !chrome_path.empty();
    const bool want_health = !health_path.empty() || watch ||
                             !prom_path.empty() ||
                             !metrics_path.empty() || listen;
    if (want_trace)
        obs::setTelemetryLevel(obs::TelemetryLevel::Full);
    else if (want_health || !manifest_path.empty() ||
             !out_prefix.empty())
        obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    obs::setProfilingEnabled(profile);
    // The Chrome export renders profiler spans on their own tracks;
    // plain --profile keeps only the cheap per-site totals.
    if (profile && !chrome_path.empty())
        obs::setProfileSpanRecording(true);

    // Fleet traces fan out over every rack: give the ring 1M slots
    // so a multi-rack day at stride 1 keeps its tail.
    obs::TraceRecorder trace(1 << 20, trace_stride);
    if (want_trace) {
        obs::setActiveTrace(&trace);
        // If the run dies mid-way (fatal() or an uncaught throw),
        // still salvage the ring as JSON Lines next to the
        // requested output.
        obs::installTraceFlushOnAbort(
            &trace, trace_path.empty()
                        ? chrome_path + ".aborted.jsonl"
                        : trace_path);
    }

    SimConfig cfg;
    if (servers != 0) {
        // Scale the banks with the cluster: the defaults size a
        // six-server rack.
        double scale = static_cast<double>(servers) /
                       static_cast<double>(cfg.numServers);
        cfg.numServers = servers;
        cfg.scEnergyWh *= scale;
        cfg.baEnergyWh *= scale;
    }
    if (hours > 0.0)
        cfg.durationSeconds = hours * 3600.0;
    if (budget_w <= 0.0)
        budget_w = 260.0 * static_cast<double>(racks);
    if (slim)
        cfg.recordSeries = false;
    cfg.validate();

    // Workload plans are immutable and the Workload contract is
    // const, so racks cycling the same profile share one cached
    // plan: the default seeds by profile position, giving every
    // "TS" rack the identical plan built once. --decorrelate-racks
    // restores a distinct seed (and plan) per rack for studies that
    // need independent rack behavior.
    std::vector<std::shared_ptr<const SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    SchemeKind kind = parseScheme(scheme_name);
    for (std::size_t r = 0; r < racks; ++r) {
        std::uint64_t wl_seed =
            cfg.seed + (decorrelate_racks ? r : r % names.size());
        workloads.push_back(SharedPlanCache::global().workload(
            names[r % names.size()], wl_seed));
        schemes.push_back(makeScheme(kind));
        specs.push_back(RackSpec{"rack" + std::to_string(r),
                                 workloads[r].get(),
                                 schemes[r].get()});
    }

    obs::RunManifest manifest;
    manifest.tool = "heb_fleet";
    manifest.seed = cfg.seed;
    manifest.config = describeSimConfig(cfg);
    manifest.schemeName = scheme_name;
    manifest.workloadName = workload_list;
    manifest.startedAtIso = isoTimestampUtc();
    auto wall_start = std::chrono::steady_clock::now();

    FleetHealthAggregator health;
    FleetOptions options{policy, mode, !slim};
    options.shards = shards;
    if (shards != 1 && want_trace)
        warn("--shards > 1: rack domains live in child processes, "
             "so their trace events never reach this process's "
             "ring; the trace will only carry parent-side events");
    if (want_health) {
        options.health = &health;
        options.healthSampleSeconds = health_stride;
        if (watch) {
            options.onHealthSample = printWatchSample;
            options.onHealthSampleUser = nullptr;
        }
    }

    std::unique_ptr<obs::MetricsHttpServer> server;
    if (listen) {
        server = std::make_unique<obs::MetricsHttpServer>(
            obs::MetricsRegistry::global(),
            static_cast<std::uint16_t>(listen_port));
        std::printf("metrics endpoint on http://127.0.0.1:%u/ "
                    "(any GET path serves the exposition)\n",
                    static_cast<unsigned>(server->port()));
        std::fflush(stdout);
    }

    FleetSimulator fleet(cfg, budget_w, options);
    FleetResult result = fleet.run(specs, ckpt);

    manifest.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    TablePrinter table({"metric", "value"});
    table.addRow({"racks", std::to_string(racks)});
    table.addRow({"policy", budgetPolicyName(policy)});
    table.addRow({"engine", fleetModeName(mode)});
    if (shards != 1)
        table.addRow({"shards", shards == 0
                                    ? std::string("auto")
                                    : std::to_string(shards)});
    table.addRow({"facility budget (W)",
                  TablePrinter::num(budget_w, 0)});
    table.addRow({"facility peak (W)",
                  TablePrinter::num(result.facilityPeakDrawW, 1)});
    table.addRow({"served (Wh)",
                  TablePrinter::num(result.totalServedWh, 1)});
    table.addRow({"unserved (Wh)",
                  TablePrinter::num(result.totalUnservedWh, 2)});
    table.addRow({"downtime (s)",
                  TablePrinter::num(result.totalDowntimeSeconds,
                                    0)});
    table.addRow({"mean EE (served-weighted)",
                  TablePrinter::num(result.meanEfficiency, 3)});
    table.addRow({"mean EE (unweighted)",
                  TablePrinter::num(result.meanEfficiencyUnweighted,
                                    3)});
    if (mode == FleetMode::Event) {
        table.addRow({"macro-spans",
                      std::to_string(result.macroSpans)});
        table.addRow({"macro-span ticks",
                      std::to_string(result.macroSpanTicks)});
        table.addRow({"dense ticks",
                      std::to_string(result.denseTicks)});
    }
    table.print();

    if (!result_json_path.empty()) {
        if (writeFileAtomic(result_json_path,
                            fleetResultToJson(result)))
            std::printf("fleet result json written to %s\n",
                        result_json_path.c_str());
    }

    if (!out_prefix.empty()) {
        writeResultMetrics(result.racks,
                           out_prefix + "_racks.csv");
        std::printf("per-rack metrics written to %s_racks.csv\n",
                    out_prefix.c_str());
    }

    if (want_trace) {
        obs::setActiveTrace(nullptr);
        obs::clearTraceFlushOnAbort();
        if (!trace_path.empty()) {
            if (endsWith(trace_path, ".csv"))
                trace.writeCsv(trace_path);
            else
                trace.writeJsonl(trace_path);
            std::printf(
                "trace: %zu events written to %s (%llu dropped, "
                "stride %zu)\n",
                trace.size(), trace_path.c_str(),
                static_cast<unsigned long long>(trace.dropped()),
                trace.tickStride());
        }
        if (!chrome_path.empty()) {
            obs::ChromeTraceOptions copts;
            copts.tickSeconds = cfg.tickSeconds;
            copts.includeProfile = profile;
            obs::writeChromeTrace(trace, chrome_path, copts);
            std::printf("chrome trace written to %s "
                        "(open in Perfetto or chrome://tracing)\n",
                        chrome_path.c_str());
        }
    }

    if (!metrics_path.empty()) {
        obs::MetricsRegistry::global().writeJson(metrics_path);
        std::printf("metrics: %zu metrics written to %s\n",
                    obs::MetricsRegistry::global().size(),
                    metrics_path.c_str());
    }

    if (!prom_path.empty()) {
        obs::writePrometheus(obs::MetricsRegistry::global(),
                             prom_path);
        std::printf("prometheus snapshot written to %s\n",
                    prom_path.c_str());
    }

    if (!health_path.empty()) {
        health.writeJson(health_path);
        std::printf("fleet health written to %s\n",
                    health_path.c_str());
    }

    if (profile) {
        std::printf("\n--- phase profile ---\n%s",
                    obs::profileReport().c_str());
    }

    if (!manifest_path.empty())
        obs::writeRunManifest(manifest_path, manifest);
    if (!out_prefix.empty())
        obs::writeRunManifest(out_prefix + "_manifest.json",
                              manifest);

    if (server) {
        std::printf("metrics endpoint served %llu scrapes\n",
                    static_cast<unsigned long long>(
                        server->requestsServed()));
        server->stop();
    }
    return 0;
}

/**
 * @file
 * heb_fleet — command-line front end for the multi-rack fleet
 * simulator.
 *
 * Builds a fleet of racks (workloads cycled from a comma-separated
 * list), arbitrates a shared facility budget across them and prints
 * the fleet aggregates plus the engine's macro-tick statistics.
 *
 * Usage:
 *   heb_fleet [--racks N] [--workloads LIST] [--scheme NAME]
 *             [--servers N] [--hours H] [--budget-w W]
 *             [--policy static|proportional]
 *             [--fleet-mode dense|event] [--jobs N] [--slim]
 *             [--out PREFIX] [--log-level LEVEL]
 *
 * --fleet-mode selects the execution engine: dense per-tick
 * stepping, or the event engine that advances fleet-wide quiescent
 * spans in macro-ticks (results are identical either way; event is
 * faster the calmer the fleet). --slim drops per-rack results and
 * per-tick series, keeping memory flat in the rack count — the
 * configuration for very large fleets. --out writes the per-rack
 * metrics table to PREFIX_racks.csv (unavailable with --slim).
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "sim/fleet.h"
#include "sim/result_io.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind : allSchemeKinds()) {
        if (name == schemeKindName(kind))
            return kind;
    }
    fatal("unknown scheme '", name,
          "' (expected BaOnly/BaFirst/SCFirst/HEB-F/HEB-S/HEB-D)");
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

void
usage()
{
    std::printf(
        "usage: heb_fleet [--racks N] [--workloads LIST] "
        "[--scheme NAME] [--servers N] [--hours H]\n"
        "                 [--budget-w W] "
        "[--policy static|proportional] "
        "[--fleet-mode dense|event]\n"
        "                 [--jobs N] [--slim] [--out PREFIX] "
        "[--log-level LEVEL]\n"
        "  workloads: comma-separated (PR WC DA WS MS DFS HB TS), "
        "cycled across racks\n"
        "  --fleet-mode event advances fleet-wide quiescent spans "
        "in macro-ticks (identical results)\n"
        "  --slim drops per-rack results and per-tick series "
        "(memory flat in rack count)\n"
        "  --budget-w is the shared facility feed "
        "(default 260 W per rack)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t racks = 4;
    std::string workload_list = "TS,WC,MS,WS";
    std::string scheme_name = "HEB-D";
    std::size_t servers = 0; // 0 -> SimConfig default
    double hours = 0.0;      // 0 -> SimConfig default
    double budget_w = 0.0;   // 0 -> 260 W per rack
    BudgetPolicy policy = BudgetPolicy::Proportional;
    FleetMode mode = FleetMode::Event;
    bool slim = false;
    std::string out_prefix;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--racks")) {
            long n = std::stol(need_value("--racks"));
            if (n < 1)
                fatal("--racks must be >= 1");
            racks = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--workloads"))
            workload_list = need_value("--workloads");
        else if (!std::strcmp(argv[i], "--scheme"))
            scheme_name = need_value("--scheme");
        else if (!std::strcmp(argv[i], "--servers")) {
            long n = std::stol(need_value("--servers"));
            if (n < 1)
                fatal("--servers must be >= 1");
            servers = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--hours")) {
            hours = std::stod(need_value("--hours"));
            if (hours <= 0.0)
                fatal("--hours must be positive");
        } else if (!std::strcmp(argv[i], "--budget-w")) {
            budget_w = std::stod(need_value("--budget-w"));
            if (budget_w <= 0.0)
                fatal("--budget-w must be positive");
        } else if (!std::strcmp(argv[i], "--policy")) {
            std::string v = need_value("--policy");
            if (v == "static")
                policy = BudgetPolicy::Static;
            else if (v == "proportional")
                policy = BudgetPolicy::Proportional;
            else
                fatal("--policy expects static or proportional");
        } else if (!std::strcmp(argv[i], "--fleet-mode")) {
            std::string v = need_value("--fleet-mode");
            if (v == "dense")
                mode = FleetMode::Dense;
            else if (v == "event")
                mode = FleetMode::Event;
            else
                fatal("--fleet-mode expects dense or event");
        } else if (!std::strcmp(argv[i], "--jobs")) {
            long n = std::stol(need_value("--jobs"));
            if (n < 1)
                fatal("--jobs must be >= 1");
            ThreadPool::configureGlobal(
                static_cast<std::size_t>(n));
        } else if (!std::strcmp(argv[i], "--slim"))
            slim = true;
        else if (!std::strcmp(argv[i], "--out"))
            out_prefix = need_value("--out");
        else if (!std::strcmp(argv[i], "--log-level"))
            setLogThreshold(parseLogLevel(need_value("--log-level")));
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", argv[i], "'");
        }
    }
    if (slim && !out_prefix.empty())
        fatal("--out needs per-rack results; drop --slim");

    std::vector<std::string> names = splitList(workload_list);
    if (names.empty())
        fatal("--workloads must name at least one workload");

    SimConfig cfg;
    if (servers != 0) {
        // Scale the banks with the cluster: the defaults size a
        // six-server rack.
        double scale = static_cast<double>(servers) /
                       static_cast<double>(cfg.numServers);
        cfg.numServers = servers;
        cfg.scEnergyWh *= scale;
        cfg.baEnergyWh *= scale;
    }
    if (hours > 0.0)
        cfg.durationSeconds = hours * 3600.0;
    if (budget_w <= 0.0)
        budget_w = 260.0 * static_cast<double>(racks);
    if (slim)
        cfg.recordSeries = false;

    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<std::unique_ptr<ManagementScheme>> schemes;
    std::vector<RackSpec> specs;
    SchemeKind kind = parseScheme(scheme_name);
    for (std::size_t r = 0; r < racks; ++r) {
        workloads.push_back(
            makeWorkload(names[r % names.size()], cfg.seed + r));
        schemes.push_back(makeScheme(kind));
        specs.push_back(RackSpec{"rack" + std::to_string(r),
                                 workloads[r].get(),
                                 schemes[r].get()});
    }

    FleetOptions options{policy, mode, !slim};
    FleetSimulator fleet(cfg, budget_w, options);
    FleetResult result = fleet.run(specs);

    TablePrinter table({"metric", "value"});
    table.addRow({"racks", std::to_string(racks)});
    table.addRow({"policy", budgetPolicyName(policy)});
    table.addRow({"engine", fleetModeName(mode)});
    table.addRow({"facility budget (W)",
                  TablePrinter::num(budget_w, 0)});
    table.addRow({"facility peak (W)",
                  TablePrinter::num(result.facilityPeakDrawW, 1)});
    table.addRow({"served (Wh)",
                  TablePrinter::num(result.totalServedWh, 1)});
    table.addRow({"unserved (Wh)",
                  TablePrinter::num(result.totalUnservedWh, 2)});
    table.addRow({"downtime (s)",
                  TablePrinter::num(result.totalDowntimeSeconds,
                                    0)});
    table.addRow({"mean EE (served-weighted)",
                  TablePrinter::num(result.meanEfficiency, 3)});
    table.addRow({"mean EE (unweighted)",
                  TablePrinter::num(result.meanEfficiencyUnweighted,
                                    3)});
    if (mode == FleetMode::Event) {
        table.addRow({"macro-spans",
                      std::to_string(result.macroSpans)});
        table.addRow({"macro-span ticks",
                      std::to_string(result.macroSpanTicks)});
        table.addRow({"dense ticks",
                      std::to_string(result.denseTicks)});
    }
    table.print();

    if (!out_prefix.empty()) {
        writeResultMetrics(result.racks,
                           out_prefix + "_racks.csv");
        std::printf("per-rack metrics written to %s_racks.csv\n",
                    out_prefix.c_str());
    }
    return 0;
}

/**
 * @file
 * heb_sim — command-line front end for the HEB simulator.
 *
 * Runs one (workload, scheme) simulation described by a key=value
 * config file, prints the headline metrics, and optionally exports
 * the tick/slot series, a per-event trace, a metrics dump, a phase
 * profile and a run-provenance manifest.
 *
 * Usage:
 *   heb_sim [--config FILE] [--workload NAME] [--scheme NAME]
 *           [--out PREFIX] [--pat FILE]
 *           [--trace-out FILE] [--trace-stride N]
 *           [--trace-chrome FILE] [--metrics-out FILE]
 *           [--prom-out FILE] [--manifest FILE]
 *           [--profile] [--log-level LEVEL]
 *           [--checkpoint-every SECONDS] [--checkpoint-dir DIR]
 *           [--resume] [--result-json FILE]
 *
 * Config keys: see simConfigFromConfig() in sim/result_io.h.
 * --pat loads a persisted PowerAllocationTable (and saves the
 * refined table back on exit), so a long-lived deployment keeps its
 * learning across runs.
 *
 * Telemetry is off (zero-cost) unless --trace-out, --trace-chrome,
 * --metrics-out, --prom-out or --profile asks for it. A trace file
 * ending in .csv is written as CSV; anything else is JSON Lines.
 * --trace-chrome renders the same ring as Chrome trace_event JSON
 * (Perfetto / chrome://tracing); --prom-out snapshots the metric
 * registry as Prometheus text exposition. A manifest is written
 * wherever --manifest points, and next to --out as
 * `<prefix>_manifest.json`.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "sim/checkpoint.h"
#include "util/atomic_file.h"
#include "sim/experiment.h"
#include "sim/result_io.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind : allSchemeKinds()) {
        if (name == schemeKindName(kind))
            return kind;
    }
    fatal("unknown scheme '", name,
          "' (expected BaOnly/BaFirst/SCFirst/HEB-F/HEB-S/HEB-D)");
}

void
usage()
{
    std::printf(
        "usage: heb_sim [--config FILE] [--workload NAME] "
        "[--scheme NAME] [--out PREFIX] [--pat FILE]\n"
        "               [--trace-out FILE] [--trace-stride N] "
        "[--trace-chrome FILE] [--metrics-out FILE]\n"
        "               [--prom-out FILE] [--manifest FILE] "
        "[--profile] [--log-level LEVEL]\n"
        "               [--jobs N] [--fast-forward on|off]\n"
        "               [--checkpoint-every SECONDS] "
        "[--checkpoint-dir DIR] [--resume]\n"
        "               [--result-json FILE]\n"
        "  workloads: PR WC DA WS MS DFS HB TS\n"
        "  schemes:   BaOnly BaFirst SCFirst HEB-F HEB-S HEB-D\n"
        "  log levels: panic fatal warn info debug "
        "(HEB_LOG_LEVEL honoured)\n"
        "  --fast-forward toggles the quiescence macro-tick "
        "engine (default on; results are identical either way)\n"
        "  --jobs sets the shared sweep pool width "
        "(HEB_JOBS honoured; default: all cores)\n"
        "  --checkpoint-every writes a resumable snapshot every N "
        "sim-seconds into --checkpoint-dir;\n"
        "  --resume restarts from the newest valid snapshot there. "
        "The final result is byte-identical\n"
        "  to an uninterrupted run. --result-json writes the full "
        "%%.17g result document.\n");
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_path;
    std::string workload_name = "TS";
    std::string scheme_name = "HEB-D";
    std::string out_prefix;
    std::string pat_path;
    std::string trace_path;
    std::string chrome_path;
    std::string metrics_path;
    std::string prom_path;
    std::string manifest_path;
    std::size_t trace_stride = 1;
    bool profile = false;
    bool fast_forward = true;
    bool fast_forward_set = false;
    CheckpointOptions ckpt;
    std::string result_json_path;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--config"))
            config_path = need_value("--config");
        else if (!std::strcmp(argv[i], "--workload"))
            workload_name = need_value("--workload");
        else if (!std::strcmp(argv[i], "--scheme"))
            scheme_name = need_value("--scheme");
        else if (!std::strcmp(argv[i], "--out"))
            out_prefix = need_value("--out");
        else if (!std::strcmp(argv[i], "--pat"))
            pat_path = need_value("--pat");
        else if (!std::strcmp(argv[i], "--trace-out"))
            trace_path = need_value("--trace-out");
        else if (!std::strcmp(argv[i], "--trace-chrome"))
            chrome_path = need_value("--trace-chrome");
        else if (!std::strcmp(argv[i], "--trace-stride")) {
            long n = std::stol(need_value("--trace-stride"));
            if (n < 1)
                fatal("--trace-stride must be >= 1");
            trace_stride = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--metrics-out"))
            metrics_path = need_value("--metrics-out");
        else if (!std::strcmp(argv[i], "--prom-out"))
            prom_path = need_value("--prom-out");
        else if (!std::strcmp(argv[i], "--manifest"))
            manifest_path = need_value("--manifest");
        else if (!std::strcmp(argv[i], "--profile"))
            profile = true;
        else if (!std::strcmp(argv[i], "--fast-forward")) {
            std::string v = need_value("--fast-forward");
            if (v != "on" && v != "off")
                fatal("--fast-forward expects on or off");
            fast_forward = v == "on";
            fast_forward_set = true;
        }
        else if (!std::strcmp(argv[i], "--checkpoint-every"))
            ckpt.everySimSeconds =
                std::stod(need_value("--checkpoint-every"));
        else if (!std::strcmp(argv[i], "--checkpoint-dir"))
            ckpt.dir = need_value("--checkpoint-dir");
        else if (!std::strcmp(argv[i], "--resume"))
            ckpt.resume = true;
        else if (!std::strcmp(argv[i], "--result-json"))
            result_json_path = need_value("--result-json");
        else if (!std::strcmp(argv[i], "--jobs")) {
            long n = std::stol(need_value("--jobs"));
            if (n < 1)
                fatal("--jobs must be >= 1");
            ThreadPool::configureGlobal(
                static_cast<std::size_t>(n));
        } else if (!std::strcmp(argv[i], "--log-level"))
            setLogThreshold(parseLogLevel(need_value("--log-level")));
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", argv[i], "'");
        }
    }

    // Telemetry stays zero-cost unless an output asks for it.
    const bool want_trace =
        !trace_path.empty() || !chrome_path.empty();
    if (want_trace)
        obs::setTelemetryLevel(obs::TelemetryLevel::Full);
    else if (!metrics_path.empty() || !prom_path.empty() ||
             !manifest_path.empty() || !out_prefix.empty())
        obs::setTelemetryLevel(obs::TelemetryLevel::Metrics);
    obs::setProfilingEnabled(profile);
    if (profile && !chrome_path.empty())
        obs::setProfileSpanRecording(true);

    obs::TraceRecorder trace(1 << 18, trace_stride);
    if (want_trace) {
        obs::setActiveTrace(&trace);
        // Salvage the ring as JSON Lines if the run dies mid-way.
        obs::installTraceFlushOnAbort(
            &trace, trace_path.empty()
                        ? chrome_path + ".aborted.jsonl"
                        : trace_path);
    }

    Config file_cfg = config_path.empty()
                          ? Config()
                          : Config::fromFile(config_path);
    SimConfig cfg = simConfigFromConfig(file_cfg);
    if (fast_forward_set)
        cfg.fastForward = fast_forward;
    cfg.validate();
    ckpt.validate();
    if (!ckpt.dir.empty())
        std::filesystem::create_directories(ckpt.dir);
    SchemeKind kind = parseScheme(scheme_name);
    HebSchemeConfig scheme_cfg;

    obs::RunManifest manifest;
    manifest.tool = "heb_sim";
    manifest.seed = cfg.seed;
    manifest.config = describeSimConfig(cfg);
    manifest.startedAtIso = isoTimestampUtc();
    auto wall_start = std::chrono::steady_clock::now();

    // Load the persisted allocation table when one exists, else run
    // the pilot profiling.
    PowerAllocationTable pat(scheme_cfg.patGrid, scheme_cfg.deltaR);
    if (!pat_path.empty() &&
        std::filesystem::exists(pat_path)) {
        pat = PowerAllocationTable::loadCsv(
            pat_path, scheme_cfg.patGrid, scheme_cfg.deltaR);
        inform("loaded ", pat.size(), " PAT entries from ",
               pat_path);
    }
    if (pat.size() == 0)
        pat = buildSeededPat(cfg, scheme_cfg);

    auto workload = makeWorkload(workload_name, cfg.seed);
    auto scheme = makeScheme(kind, scheme_cfg, &pat);
    Simulator sim(cfg);
    SimResult r = sim.run(*workload, *scheme, ckpt);

    manifest.schemeName = r.schemeName;
    manifest.workloadName = r.workloadName;
    manifest.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    TablePrinter table({"metric", "value"});
    table.addRow({"scheme", r.schemeName});
    table.addRow({"workload", r.workloadName});
    table.addRow({"duration (h)",
                  TablePrinter::num(r.durationSeconds / 3600.0, 1)});
    table.addRow({"buffer efficiency",
                  TablePrinter::num(r.energyEfficiency, 3)});
    table.addRow({"effective efficiency",
                  TablePrinter::num(r.effectiveEfficiency, 3)});
    table.addRow({"downtime (s)",
                  TablePrinter::num(r.downtimeSeconds, 0)});
    table.addRow({"battery lifetime (y)",
                  TablePrinter::num(r.batteryLifetimeYears, 2)});
    table.addRow({"REU", TablePrinter::num(r.reu, 3)});
    table.addRow({"buffer->load (Wh)",
                  TablePrinter::num(r.ledger.bufferToLoadWh(), 1)});
    table.addRow({"unserved (Wh)",
                  TablePrinter::num(r.ledger.unservedWh, 2)});
    table.addRow({"peak draw (W)",
                  TablePrinter::num(r.peakUtilityDrawW, 1)});
    table.addRow({"relay actuations",
                  std::to_string(r.switchActuations)});
    table.print();

    if (!result_json_path.empty()) {
        if (writeFileAtomic(result_json_path,
                                simResultToJson(r)))
            std::printf("result json written to %s\n",
                        result_json_path.c_str());
    }

    if (!out_prefix.empty()) {
        writeResultSeries(r, out_prefix);
        writeResultMetrics({r}, out_prefix + "_metrics.csv");
        std::printf("series written to %s_{ticks,slots}.csv, "
                    "metrics to %s_metrics.csv\n",
                    out_prefix.c_str(), out_prefix.c_str());
    }

    if (want_trace) {
        obs::setActiveTrace(nullptr);
        obs::clearTraceFlushOnAbort();
        if (!trace_path.empty()) {
            if (endsWith(trace_path, ".csv"))
                trace.writeCsv(trace_path);
            else
                trace.writeJsonl(trace_path);
            std::printf(
                "trace: %zu events written to %s (%llu dropped, "
                "stride %zu)\n",
                trace.size(), trace_path.c_str(),
                static_cast<unsigned long long>(trace.dropped()),
                trace.tickStride());
        }
        if (!chrome_path.empty()) {
            obs::ChromeTraceOptions copts;
            copts.tickSeconds = cfg.tickSeconds;
            copts.includeProfile = profile;
            obs::writeChromeTrace(trace, chrome_path, copts);
            std::printf("chrome trace written to %s "
                        "(open in Perfetto or chrome://tracing)\n",
                        chrome_path.c_str());
        }
    }

    if (!metrics_path.empty()) {
        obs::MetricsRegistry::global().writeJson(metrics_path);
        std::printf("metrics: %zu metrics written to %s\n",
                    obs::MetricsRegistry::global().size(),
                    metrics_path.c_str());
    }

    if (!prom_path.empty()) {
        obs::writePrometheus(obs::MetricsRegistry::global(),
                             prom_path);
        std::printf("prometheus snapshot written to %s\n",
                    prom_path.c_str());
    }

    if (profile) {
        std::printf("\n--- phase profile ---\n%s",
                    obs::profileReport().c_str());
    }

    if (!manifest_path.empty())
        obs::writeRunManifest(manifest_path, manifest);
    if (!out_prefix.empty())
        obs::writeRunManifest(out_prefix + "_manifest.json",
                              manifest);

    if (!pat_path.empty()) {
        // Persist the refined table: the HEB schemes keep learning.
        const auto *heb =
            dynamic_cast<const HebScheme *>(scheme.get());
        if (heb) {
            heb->pat().saveCsv(pat_path);
            std::printf("allocation table (%zu entries) saved to "
                        "%s\n",
                        heb->pat().size(), pat_path.c_str());
        }
    }
    return 0;
}

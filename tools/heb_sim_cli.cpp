/**
 * @file
 * heb_sim — command-line front end for the HEB simulator.
 *
 * Runs one (workload, scheme) simulation described by a key=value
 * config file, prints the headline metrics, and optionally exports
 * the tick/slot series and metrics as CSV.
 *
 * Usage:
 *   heb_sim [--config FILE] [--workload NAME] [--scheme NAME]
 *           [--out PREFIX] [--pat FILE]
 *
 * Config keys: see simConfigFromConfig() in sim/result_io.h.
 * --pat loads a persisted PowerAllocationTable (and saves the
 * refined table back on exit), so a long-lived deployment keeps its
 * learning across runs.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "sim/experiment.h"
#include "sim/result_io.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/workload_profiles.h"

using namespace heb;

namespace {

SchemeKind
parseScheme(const std::string &name)
{
    for (SchemeKind kind : allSchemeKinds()) {
        if (name == schemeKindName(kind))
            return kind;
    }
    fatal("unknown scheme '", name,
          "' (expected BaOnly/BaFirst/SCFirst/HEB-F/HEB-S/HEB-D)");
}

void
usage()
{
    std::printf(
        "usage: heb_sim [--config FILE] [--workload NAME] "
        "[--scheme NAME] [--out PREFIX] [--pat FILE]\n"
        "  workloads: PR WC DA WS MS DFS HB TS\n"
        "  schemes:   BaOnly BaFirst SCFirst HEB-F HEB-S HEB-D\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_path;
    std::string workload_name = "TS";
    std::string scheme_name = "HEB-D";
    std::string out_prefix;
    std::string pat_path;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--config"))
            config_path = need_value("--config");
        else if (!std::strcmp(argv[i], "--workload"))
            workload_name = need_value("--workload");
        else if (!std::strcmp(argv[i], "--scheme"))
            scheme_name = need_value("--scheme");
        else if (!std::strcmp(argv[i], "--out"))
            out_prefix = need_value("--out");
        else if (!std::strcmp(argv[i], "--pat"))
            pat_path = need_value("--pat");
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '", argv[i], "'");
        }
    }

    Config file_cfg = config_path.empty()
                          ? Config()
                          : Config::fromFile(config_path);
    SimConfig cfg = simConfigFromConfig(file_cfg);
    SchemeKind kind = parseScheme(scheme_name);
    HebSchemeConfig scheme_cfg;

    // Load the persisted allocation table when one exists, else run
    // the pilot profiling.
    PowerAllocationTable pat(scheme_cfg.patGrid, scheme_cfg.deltaR);
    if (!pat_path.empty() &&
        std::filesystem::exists(pat_path)) {
        pat = PowerAllocationTable::loadCsv(
            pat_path, scheme_cfg.patGrid, scheme_cfg.deltaR);
        inform("loaded ", pat.size(), " PAT entries from ",
               pat_path);
    }
    if (pat.size() == 0)
        pat = buildSeededPat(cfg, scheme_cfg);

    auto workload = makeWorkload(workload_name, cfg.seed);
    auto scheme = makeScheme(kind, scheme_cfg, &pat);
    Simulator sim(cfg);
    SimResult r = sim.run(*workload, *scheme);

    TablePrinter table({"metric", "value"});
    table.addRow({"scheme", r.schemeName});
    table.addRow({"workload", r.workloadName});
    table.addRow({"duration (h)",
                  TablePrinter::num(r.durationSeconds / 3600.0, 1)});
    table.addRow({"buffer efficiency",
                  TablePrinter::num(r.energyEfficiency, 3)});
    table.addRow({"effective efficiency",
                  TablePrinter::num(r.effectiveEfficiency, 3)});
    table.addRow({"downtime (s)",
                  TablePrinter::num(r.downtimeSeconds, 0)});
    table.addRow({"battery lifetime (y)",
                  TablePrinter::num(r.batteryLifetimeYears, 2)});
    table.addRow({"REU", TablePrinter::num(r.reu, 3)});
    table.addRow({"buffer->load (Wh)",
                  TablePrinter::num(r.ledger.bufferToLoadWh(), 1)});
    table.addRow({"unserved (Wh)",
                  TablePrinter::num(r.ledger.unservedWh, 2)});
    table.addRow({"peak draw (W)",
                  TablePrinter::num(r.peakUtilityDrawW, 1)});
    table.addRow({"relay actuations",
                  std::to_string(r.switchActuations)});
    table.print();

    if (!out_prefix.empty()) {
        writeResultSeries(r, out_prefix);
        writeResultMetrics({r}, out_prefix + "_metrics.csv");
        std::printf("series written to %s_{ticks,slots}.csv, "
                    "metrics to %s_metrics.csv\n",
                    out_prefix.c_str(), out_prefix.c_str());
    }

    if (!pat_path.empty()) {
        // Persist the refined table: the HEB schemes keep learning.
        const auto *heb =
            dynamic_cast<const HebScheme *>(scheme.get());
        if (heb) {
            heb->pat().saveCsv(pat_path);
            std::printf("allocation table (%zu entries) saved to "
                        "%s\n",
                        heb->pat().size(), pat_path.c_str());
        }
    }
    return 0;
}

/**
 * @file
 * heb_promlint — validate Prometheus text-exposition files.
 *
 * Runs the in-repo exposition validator (the same checks CI's
 * obs-smoke job applies when promtool is unavailable) over each
 * argument, or over stdin when invoked without arguments.
 *
 * Usage:
 *   heb_promlint [FILE...]
 *
 * Exit status: 0 when every input validates, 1 otherwise. Errors
 * name the offending file and line.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/prometheus.h"
#include "util/logging.h"

using namespace heb;

namespace {

bool
lintOne(const std::string &label, const std::string &text)
{
    std::string error;
    if (obs::validatePrometheusText(text, &error)) {
        std::printf("%s: OK\n", label.c_str());
        return true;
    }
    std::fprintf(stderr, "%s: %s\n", label.c_str(), error.c_str());
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (!std::strcmp(argv[1], "--help") ||
                     !std::strcmp(argv[1], "-h"))) {
        std::printf("usage: heb_promlint [FILE...]\n"
                    "  validates Prometheus text exposition; reads "
                    "stdin when no files are given\n");
        return 0;
    }

    bool ok = true;
    if (argc < 2) {
        std::ostringstream body;
        body << std::cin.rdbuf();
        ok = lintOne("<stdin>", body.str());
    } else {
        for (int i = 1; i < argc; ++i) {
            std::FILE *f = std::fopen(argv[i], "rb");
            if (!f) {
                std::fprintf(stderr, "%s: cannot open\n", argv[i]);
                ok = false;
                continue;
            }
            std::string text;
            char buf[1 << 16];
            std::size_t got;
            while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
                text.append(buf, got);
            std::fclose(f);
            ok = lintOne(argv[i], text) && ok;
        }
    }
    return ok ? 0 : 1;
}
